package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	rpprof "runtime/pprof"
	"strings"
	"testing"

	"stars/internal/obs"
	"stars/internal/prof"
)

func getProfile(t *testing.T, url string) *prof.Report {
	t.Helper()
	resp, err := http.Get(url + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /profile status = %d", resp.StatusCode)
	}
	var rep prof.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestProfileMetricsPreRegistered: every opt_phase_* / opt_rank_* series is
// scrapeable at zero before the first request.
func TestProfileMetricsPreRegistered(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, name := range obs.ProfMetricNames() {
		if !strings.Contains(body, name+" 0") {
			t.Errorf("/metrics before traffic lacks %s at zero", name)
		}
	}
}

// TestProfileEndpoint: a served request populates the rolling aggregate —
// phases (including the front end's parse phase) with self-time, and the
// opt_phase_* counters move.
func TestProfileEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if rep := getProfile(t, ts.URL); rep.Requests != 0 || len(rep.Totals.Phases) != 0 {
		t.Fatalf("fresh profile not empty: %+v", rep)
	}

	const N = 3
	for i := 0; i < N; i++ {
		if status, _, _ := postOptimize(t, ts.URL, OptimizeRequest{SQL: figure1SQL}); status != http.StatusOK {
			t.Fatalf("optimize status = %d", status)
		}
	}

	rep := getProfile(t, ts.URL)
	if rep.Schema != prof.SchemaV1 {
		t.Errorf("schema = %q, want %s", rep.Schema, prof.SchemaV1)
	}
	if rep.Requests != N {
		t.Errorf("requests = %d, want %d", rep.Requests, N)
	}
	if rep.Totals.ElapsedNS <= 0 {
		t.Errorf("totals elapsed = %d, want > 0", rep.Totals.ElapsedNS)
	}
	phases := map[string]int64{}
	for _, ph := range rep.Totals.Phases {
		phases[ph.Phase] = ph.Count
	}
	for _, want := range []string{"parse", "prepare", "access", "join-2", "root", "finalize"} {
		if phases[want] != N {
			t.Errorf("phase %s count = %d, want %d (phases: %v)", want, phases[want], N, phases)
		}
	}
	if len(rep.Totals.Rules) == 0 || rep.Totals.Rules[0].SelfNS <= 0 {
		t.Errorf("rule attribution empty: %+v", rep.Totals.Rules)
	}

	// The per-request publishes reached the shared registry.
	counters := s.Registry().Counters()
	if got := counters[`opt_phase_spans_total{phase="parse"}`]; got != N {
		t.Errorf(`opt_phase_spans_total{phase="parse"} = %d, want %d`, got, N)
	}
	if got := counters[`opt_phase_spans_total{phase="join"}`]; got != N {
		t.Errorf(`opt_phase_spans_total{phase="join"} = %d, want %d`, got, N)
	}
	if got := counters[`opt_phase_self_ns_total{phase="join"}`]; got <= 0 {
		t.Errorf("join self-time counter = %d, want > 0", got)
	}
}

// TestProfileDisabled: DisableProfiling serves identically but collects and
// publishes nothing.
func TestProfileDisabled(t *testing.T) {
	s := newTestServer(t, Config{DisableProfiling: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _, _ := postOptimize(t, ts.URL, OptimizeRequest{SQL: figure1SQL}); status != http.StatusOK {
		t.Fatalf("optimize status = %d", status)
	}
	rep := getProfile(t, ts.URL)
	if rep.Requests != 0 || len(rep.Totals.Phases) != 0 {
		t.Errorf("disabled profiling still aggregated: %+v", rep)
	}
	if got := s.Registry().Counters()[`opt_phase_spans_total{phase="join"}`]; got != 0 {
		t.Errorf("disabled profiling published phase spans: %d", got)
	}
}

// TestRequestPprofLabels: while a request is held inside the worker, the
// goroutine dump shows the req= and template= labels rpprof.Do applied.
func TestRequestPprofLabels(t *testing.T) {
	s := newTestServer(t, Config{})
	hold := make(chan struct{})
	s.testHold = hold
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		status, _, _ := postOptimize(t, ts.URL, OptimizeRequest{SQL: figure1SQL})
		done <- status
	}()
	waitFor(t, func() bool { return s.Registry().Gauge("serve_inflight").Value() == 1 })

	// debug=1 renders each goroutine's label set ("labels: {...}").
	var buf bytes.Buffer
	if err := rpprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	if !strings.Contains(dump, `"req":"r1"`) {
		t.Errorf("goroutine dump lacks the req label:\n%s", dump)
	}
	if !strings.Contains(dump, `"template":`) || !strings.Contains(dump, "SELECT DEPT.DNO") {
		t.Errorf("goroutine dump lacks the template label:\n%s", dump)
	}

	close(hold)
	if got := <-done; got != http.StatusOK {
		t.Errorf("held request finished with %d", got)
	}
}
