package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stars/internal/coverage"
)

// getCoverage fetches and decodes GET /coverage.
func getCoverage(t *testing.T, url string) *coverage.LedgerReport {
	t.Helper()
	resp, err := http.Get(url + "/coverage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /coverage: %d", resp.StatusCode)
	}
	var rep coverage.LedgerReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestCoverageEndpoint drives the acceptance path: a fresh daemon exposes
// the whole (unexercised) alternative space, and an execute+analyze request
// populates the per-template Q-error ledger.
func TestCoverageEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Before any traffic: full universe, nothing exercised, no templates.
	rep := getCoverage(t, ts.URL)
	if rep.Schema != coverage.SchemaV1 {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Requests != 0 || len(rep.Templates) != 0 {
		t.Fatalf("fresh ledger not empty: %+v", rep)
	}
	if rep.Coverage == nil || rep.Coverage.Summary.Alternatives == 0 {
		t.Fatal("fresh ledger hides the alternative universe")
	}
	if rep.Coverage.Summary.Exercised != 0 {
		t.Fatalf("exercised before any request: %+v", rep.Coverage.Summary)
	}

	// One optimize-only and two execute+analyze requests (same template).
	for i, req := range []OptimizeRequest{
		{SQL: figure1SQL},
		{SQL: figure1SQL, Execute: true, Analyze: true},
		{SQL: strings.ReplaceAll(figure1SQL, "'Haas'", "'Nobody'"), Execute: true, Analyze: true},
	} {
		if status, _, bad := postOptimize(t, ts.URL, req); status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, status, bad.Error)
		}
	}

	rep = getCoverage(t, ts.URL)
	if rep.Requests != 3 {
		t.Errorf("requests = %d", rep.Requests)
	}
	if got := rep.Coverage.Runs; got != 3 {
		t.Errorf("coverage runs = %d", got)
	}
	if rep.Coverage.Summary.Exercised == 0 || rep.Coverage.Summary.Winning == 0 {
		t.Errorf("requests exercised nothing: %+v", rep.Coverage.Summary)
	}
	// The two literal variants collapse into one template.
	if len(rep.Templates) != 1 {
		t.Fatalf("templates = %d, want 1 (literals must collapse): %+v", len(rep.Templates), rep.Templates)
	}
	tr := rep.Templates[0]
	if tr.Requests != 3 || tr.Executions != 2 {
		t.Errorf("template: %+v", tr)
	}
	if tr.QError == nil || tr.QError.Count == 0 {
		t.Fatalf("no per-template Q-error digest: %+v", tr)
	}
	if tr.QError.P50 < 1 || tr.QError.P99 < tr.QError.P50 || tr.QError.Max < tr.QError.P99 {
		t.Errorf("quantiles disordered: %+v", tr.QError)
	}
	if len(tr.Ops) == 0 {
		t.Error("no per-operator feedback")
	}
	if rep.QError == nil || rep.QError.Count != tr.QError.Count {
		t.Errorf("aggregate digest disagrees: %+v vs %+v", rep.QError, tr.QError)
	}
}

// TestCoverageMetricsSurface: the coverage/Q-error series are pre-registered
// at zero on a fresh daemon and move with traffic.
func TestCoverageMetricsSurface(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	metrics := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	fresh := metrics()
	for _, want := range []string{
		"coverage_runs_total 0",
		`coverage_alt_fired_total{rule="JMeth",alt="1"} 0`,
		`coverage_alt_retained_total{rule="TableAccess",alt="2"} 0`,
		`coverage_alt_winner_total{rule="AccessRoot",alt="1"} 0`,
		`coverage_veneer_injected_total{op="SHIP"} 0`,
		"qerror_observations_total 0",
		"coverage_ratio 0",
		"qerror_p99 0",
		"coverage_alternatives ",
	} {
		if !strings.Contains(fresh, want) {
			t.Errorf("fresh /metrics missing %q", want)
		}
	}

	if status, _, bad := postOptimize(t, ts.URL, OptimizeRequest{SQL: figure1SQL, Execute: true, Analyze: true}); status != http.StatusOK {
		t.Fatalf("optimize: %d (%s)", status, bad.Error)
	}
	after := metrics()
	if strings.Contains(after, "coverage_runs_total 0") {
		t.Error("coverage_runs_total did not move")
	}
	if strings.Contains(after, "qerror_observations_total 0") {
		t.Error("qerror_observations_total did not move")
	}
	if strings.Contains(after, "coverage_ratio 0\n") {
		t.Error("coverage_ratio still zero after an exercised request")
	}
}
