// Package serve is the optimizer-as-a-service layer: a long-running HTTP
// daemon that optimizes (and optionally executes) queries concurrently and
// exposes the repository's whole observability surface live — Prometheus
// metrics aggregated across requests, a streaming NDJSON/SSE event feed,
// per-request provenance, and pprof.
//
// The concurrency design is per-request isolation: every /optimize request
// gets its own obs.Sink tagged with a request id, so concurrent
// optimizations never interleave their traces. Each event is tee'd to the
// live /events fan-out (bounded per-subscriber buffers, drops counted, slow
// tails never stall an optimization), and each request's private metrics
// registry is merged into the server's process-wide registry after the
// request, keeping /metrics an exact aggregate of per-request figures.
//
// Operationally: an admission gate bounds in-flight optimizations
// (Config.MaxInflight, excess rejected with 503), a per-request timeout
// bounds latency (504), and cancellation of the Run/Serve context drains
// gracefully — readiness flips to 503, event streams end, and in-flight
// requests finish before the listener closes. See docs/SERVING.md.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/coverage"
	"stars/internal/exec"
	"stars/internal/flight"
	"stars/internal/obs"
	"stars/internal/opt"
	"stars/internal/plan"
	"stars/internal/prof"
	"stars/internal/provenance"
	"stars/internal/query"
	"stars/internal/sqlparse"
	"stars/internal/star"
	"stars/internal/starcheck"
	"stars/internal/storage"
	"stars/internal/workload"
)

// Event names the daemon emits into each request's sink (and therefore the
// live /events stream), alongside the optimizer's and executor's taxonomy.
const (
	// EvRequest marks a request entering the service; A1 is the endpoint,
	// A2 the SQL text.
	EvRequest = "serve.request"
	// EvRequestDone marks its completion; N1 is the HTTP status, F1 the
	// wall-clock seconds spent.
	EvRequestDone = "serve.request.done"
)

// Config tunes the daemon. The zero value serves the EMP/DEPT demo catalog
// on :8080.
type Config struct {
	// Addr is the listen address for Run (default ":8080").
	Addr string
	// Catalog is the catalog queries are optimized against; nil selects
	// the paper's EMP/DEPT demo catalog.
	Catalog *catalog.Catalog
	// Demo populates the EMP/DEPT demo data instead of synthetic data
	// matching catalog statistics. Implied when Catalog is nil.
	Demo bool
	// Options are the base optimizer options; per-request sinks overwrite
	// Options.Obs.
	Options opt.Options
	// Seed drives deterministic data generation for Execute requests.
	Seed int64
	// MaxInflight bounds concurrently admitted /optimize requests;
	// excess requests are rejected with 503 (default 64).
	MaxInflight int
	// Timeout bounds one request's optimize+execute work; on expiry the
	// client gets 504 (default 30s). Zero means the default; negative
	// disables.
	Timeout time.Duration
	// DrainTimeout bounds the graceful drain after shutdown begins
	// (default 10s).
	DrainTimeout time.Duration
	// EventBuffer is the per-subscriber /events buffer in events; a full
	// buffer drops rather than blocks (default 1024).
	EventBuffer int
	// Limit is the default row cap echoed back by Execute when the
	// request doesn't set one (default 100).
	Limit int
	// Parallelism caps the join-enumeration worker fan-out of each
	// optimize request (default 1: concurrency across requests already
	// keeps a loaded server's cores busy, so intra-query fan-out only
	// helps latency on idle servers; results are identical either way).
	// Zero selects the default; negative means the process default
	// (opt.SetDefaultParallelism / GOMAXPROCS).
	Parallelism int
	// DisableProfiling turns the per-request self-profiler off. By default
	// every request's optimization is profiled (cheap accumulators on the
	// request's sink): phase/rank tallies feed the opt_phase_* / opt_rank_*
	// metrics and the rolling GET /profile aggregate.
	DisableProfiling bool
	// Flight tunes the flight recorder and plan-stability watchdog (ring
	// sizes, anomaly thresholds, incident directory); its CatalogEpoch,
	// RulesHash, and zero fields are filled by the daemon at boot. See
	// internal/flight.
	Flight flight.Config
	// DisableFlight turns the flight recorder off entirely: no records,
	// no watchdog, no incidents, and the /optimize hot path stays
	// allocation-identical to a recorder-less build.
	DisableFlight bool
	// Log receives operational messages (start, drain); nil discards.
	Log *log.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Catalog == nil {
		c.Catalog = workload.EmpDept()
		c.Demo = true
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 1024
	}
	if c.Limit == 0 {
		c.Limit = 100
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	} else if c.Parallelism < 0 {
		c.Parallelism = 0 // process default (SetDefaultParallelism / GOMAXPROCS)
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	return c
}

// Server is the daemon: an http.Handler plus the shared state behind it.
type Server struct {
	cfg   Config
	reg   *obs.Registry // process-wide aggregate behind /metrics
	bcast *broadcaster
	mux   *http.ServeMux
	// routes is the endpoint table the mux and the index page share.
	routes []route

	// rules is the effective repertoire (Config.Options.Rules or the
	// built-ins) — the coverage universe behind /coverage.
	rules *star.RuleSet
	// ledger is the rolling coverage + Q-error view every request feeds
	// (see internal/coverage).
	ledger *coverage.Ledger
	// flight is the flight recorder + watchdog (nil when disabled);
	// rulesText/rulesHash/catalogEpoch are the boot-time identity stamps
	// its records and captures carry.
	flight       *flight.Recorder
	rulesText    string
	rulesHash    string
	catalogEpoch string

	inflight chan struct{} // admission-gate semaphore
	reqSeq   atomic.Int64
	ready    atomic.Bool
	addr     atomic.Value // string: actual listen address

	// Execution shares one storage cluster whose page/message counters
	// are per-run state, so runs are serialized; optimization is not.
	execMu  sync.Mutex
	cluster *storage.Cluster

	// The rolling self-profile behind GET /profile: every profiled request
	// folds its per-phase/rule/rank attribution in after answering.
	profMu       sync.Mutex
	profAgg      *prof.Profile
	profRequests int64

	// testHold, when non-nil, blocks each request's worker until the
	// channel yields — test hook for admission/timeout behavior.
	testHold chan struct{}
}

// New builds a daemon. The execution cluster is populated once, up front,
// so Execute requests don't race data generation.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, fmt.Errorf("serve: catalog: %w", err)
	}
	if cfg.Options.Rules != nil {
		// A custom repertoire serves every request of a long-lived daemon,
		// so it is linted at boot: warnings go to the log, errors refuse to
		// start (they would fail every optimization anyway). This is the
		// full opt.Lint, semantic pass included — SC1xx/SC2xx/SC3xx
		// findings about dead alternatives and impossible operators land
		// in the boot log before the first request can hit them.
		diags := opt.Lint(cfg.Catalog, cfg.Options)
		for _, d := range diags {
			cfg.Log.Printf("lint: %s", d)
		}
		if n := starcheck.Errors(diags); n > 0 {
			return nil, fmt.Errorf("serve: rule set has %d lint error(s); run `starburst lint` for details", n)
		}
	}
	rules := cfg.Options.Rules
	if rules == nil {
		rules = star.DefaultRules()
	}
	s := &Server{
		cfg:      cfg,
		reg:      obs.NewRegistry(),
		inflight: make(chan struct{}, cfg.MaxInflight),
		cluster:  storage.NewCluster(cfg.Catalog.Sites...),
		rules:    rules,
		ledger:   coverage.NewLedger(0),
		profAgg:  &prof.Profile{},
	}
	if cfg.Demo {
		workload.PopulateEmpDept(s.cluster, cfg.Catalog, cfg.Seed)
	} else {
		workload.Populate(s.cluster, cfg.Catalog, cfg.Seed)
	}
	s.bcast = newBroadcaster(s.reg)

	// Stamp the inputs every plan depends on besides the query: the rule
	// text's and the catalog export's FNV-64a digests, computed once at
	// boot. A later in-place stats mutation is invisible to the epoch by
	// design — that staleness is what lets the watchdog call a changed
	// fingerprint a plan flip.
	s.rulesText = star.Format(rules)
	s.rulesHash = fnvHex(s.rulesText)
	if b, err := cfg.Catalog.MarshalJSONIndent(); err == nil {
		s.catalogEpoch = fnvHex(string(b))
	}
	if !cfg.DisableFlight {
		fc := cfg.Flight
		fc.CatalogEpoch = s.catalogEpoch
		fc.RulesHash = s.rulesHash
		s.flight = flight.New(fc)
	}

	// Touch the service metrics so /metrics exposes them at zero before
	// the first request — scrapers and smoke tests see the full surface
	// immediately.
	s.reg.Counter(`serve_requests_total{status="200"}`)
	s.reg.Counter("serve_rejected_total")
	s.reg.Gauge("serve_inflight")
	s.reg.Histogram(`serve_request_seconds{path="/optimize"}`)
	// Same for the coverage and Q-error surface: every alternative of the
	// effective repertoire gets its series at zero, so a scrape before (or
	// without) traffic still shows the whole alternative space.
	s.reg.Counter("coverage_runs_total")
	s.reg.Counter("qerror_observations_total")
	for _, name := range rules.Names() {
		for i := range rules.Get(name).Alts {
			labels := `{rule="` + name + `",alt="` + strconv.Itoa(i+1) + `"}`
			s.reg.Counter("coverage_alt_fired_total" + labels)
			s.reg.Counter("coverage_alt_retained_total" + labels)
			s.reg.Counter("coverage_alt_winner_total" + labels)
		}
	}
	for _, op := range []plan.Op{plan.OpShip, plan.OpSort, plan.OpStore, plan.OpBuildIndex, plan.OpFilter} {
		s.reg.Counter(`coverage_veneer_injected_total{op="` + string(op) + `"}`)
	}
	s.ledger.PublishMetrics(s.reg, rules) // gauges at their empty-state values
	// And the self-profiler's phase/rank series, so the profiling surface is
	// scrapeable at zero before any traffic.
	if !cfg.DisableProfiling {
		for _, name := range obs.ProfMetricNames() {
			s.reg.Counter(name)
		}
	}
	// And the flight recorder's surface.
	if s.flight != nil {
		s.reg.Counter("flight_records_total")
		s.reg.Counter("flight_incidents_total")
		s.reg.Counter("flight_incident_write_errors_total")
		s.reg.Counter("plan_flip_total")
		for _, kind := range flight.Kinds {
			s.reg.Counter(`flight_anomaly_total{kind="` + kind + `"}`)
		}
		s.reg.Gauge("flight_templates")
		s.reg.Gauge("flight_incidents")
	}

	// One table drives both the mux and the index page, so a newly mounted
	// endpoint cannot be forgotten on the root listing (routes with an
	// empty description are sub-routes the index leaves out).
	s.routes = []route{
		{"POST /optimize", "optimize (and optionally execute) a query; JSON in/out", s.handleOptimize},
		{"GET /metrics", "Prometheus metrics, aggregated across all requests", s.handleMetrics},
		{"GET /coverage", "rolling rule/alternative coverage and per-template Q-error ledger", s.handleCoverage},
		{"GET /profile", "rolling self-profile: phase/rule time and allocation attribution (stars/profile/v1)", s.handleProfile},
		{"GET /events", "live observability events (NDJSON; SSE with Accept: text/event-stream)", s.handleEvents},
		{"GET /incidents", "flight-recorder incidents, list form (stars/incident/v1)", s.handleIncidents},
		{"GET /incidents/{id}", "one full incident bundle, canonical JSON (feed to `starburst replay`)", s.handleIncident},
		{"GET /debug/flight", "flight-recorder live state: census, per-template baselines, recent requests", s.handleDebugFlight},
		{"GET /healthz", "liveness", s.handleHealthz},
		{"GET /readyz", "readiness JSON: ready/draining/inflight (503 while draining)", s.handleReadyz},
		{"GET /debug/pprof/", "Go profiling", pprof.Index},
		{"GET /debug/pprof/cmdline", "", pprof.Cmdline},
		{"GET /debug/pprof/profile", "", pprof.Profile},
		{"GET /debug/pprof/symbol", "", pprof.Symbol},
		{"GET /debug/pprof/trace", "", pprof.Trace},
	}
	mux := http.NewServeMux()
	for _, r := range s.routes {
		mux.HandleFunc(r.pattern, r.handler)
	}
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux = mux
	return s, nil
}

// route is one mounted endpoint: its mux pattern, its index-page
// description ("" keeps it off the index), and its handler.
type route struct {
	pattern string
	desc    string
	handler http.HandlerFunc
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the process-wide metrics registry behind /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Addr returns the actual listen address once Serve has bound it — the way
// to find the port after listening on ":0".
func (s *Server) Addr() string {
	if a, ok := s.addr.Load().(string); ok {
		return a
	}
	return s.cfg.Addr
}

// Run listens on Config.Addr and serves until ctx is cancelled, then drains
// gracefully.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve serves HTTP on ln until ctx is cancelled, then drains: readiness
// flips to 503 (load balancers stop routing), live event streams end, and
// in-flight requests get up to Config.DrainTimeout to finish before the
// listener closes. Returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.addr.Store(ln.Addr().String())
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	s.ready.Store(true)
	s.cfg.Log.Printf("serving on http://%s (max-inflight %d, timeout %s)",
		ln.Addr(), s.cfg.MaxInflight, s.cfg.Timeout)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.ready.Store(false)
		return err
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.cfg.Log.Printf("draining (timeout %s)", s.cfg.DrainTimeout)
	s.bcast.closeAll()
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc // srv.Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	s.cfg.Log.Printf("drained")
	return nil
}

// handleIndex is a plain-text map of the surface, rendered from the same
// routes table the mux is built from.
func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "starburst serve — optimizer as a service (schema %s)\n\n", SchemaV1)
	width := 0
	for _, r := range s.routes {
		if r.desc != "" && len(r.pattern) > width {
			width = len(r.pattern)
		}
	}
	for _, r := range s.routes {
		if r.desc == "" {
			continue
		}
		method, path, _ := strings.Cut(r.pattern, " ")
		fmt.Fprintf(w, "%-4s %-*s  %s\n", method, width-len(method), path, r.desc)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// readyzBody is the GET /readyz JSON: load balancers branch on the status
// code, humans and scripts read the body.
type readyzBody struct {
	Ready bool `json:"ready"`
	// Draining is true once shutdown began (readiness flipped off while
	// the daemon finishes in-flight work).
	Draining bool `json:"draining"`
	// Inflight is the number of currently admitted /optimize requests.
	Inflight int `json:"inflight"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := s.ready.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, readyzBody{Ready: ready, Draining: !ready, Inflight: len(s.inflight)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.cfg.Log.Printf("metrics write: %v", err)
	}
}

// handleCoverage renders the rolling coverage + Q-error ledger: which
// alternatives of the serving repertoire requests have exercised so far,
// and per-query-template estimate-vs-actual quality after execute+analyze
// requests.
func (s *Server) handleCoverage(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.ledger.Snapshot(s.rules))
}

// handleProfile renders the rolling self-profile aggregate (schema
// stars/profile/v1): every profiled request's phase/rule/activity/rank
// attribution folded together since boot.
func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request) {
	rep := prof.NewReport(runtime.GOMAXPROCS(0), s.cfg.Parallelism)
	s.profMu.Lock()
	rep.Requests = s.profRequests
	rep.Totals = s.profAgg.Clone()
	s.profMu.Unlock()
	s.writeJSON(w, http.StatusOK, rep)
}

// outcome is one request worker's result.
type outcome struct {
	status int
	resp   *OptimizeResponse
	err    error
}

// handleOptimize admits, times, and answers one optimization request.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
	status := http.StatusOK
	defer func() {
		s.reg.Counter(`serve_requests_total{status="` + strconv.Itoa(status) + `"}`).Add(1)
		s.reg.Histogram(`serve_request_seconds{path="/optimize"}`).Observe(time.Since(start))
	}()

	// Admission gate: reject rather than queue when MaxInflight requests
	// are already being optimized — a loaded optimizer service degrades
	// more predictably by shedding than by stacking latency.
	select {
	case s.inflight <- struct{}{}:
	default:
		status = http.StatusServiceUnavailable
		s.reg.Counter("serve_rejected_total").Add(1)
		s.writeError(w, status, reqID, fmt.Errorf("too many in-flight requests (max %d)", s.cfg.MaxInflight))
		return
	}
	gauge := s.reg.Gauge("serve_inflight")
	gauge.Add(1)

	var req OptimizeRequest
	body := io.LimitReader(r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		status = http.StatusBadRequest
		gauge.Add(-1)
		<-s.inflight
		s.writeError(w, status, reqID, fmt.Errorf("bad request body: %w", err))
		return
	}

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			gauge.Add(-1)
			<-s.inflight
		}()
		done <- s.do(reqID, req)
	}()
	select {
	case out := <-done:
		status = out.status
		if out.err != nil {
			s.writeError(w, status, reqID, out.err)
			return
		}
		s.writeJSON(w, status, out.resp)
	case <-ctx.Done():
		// The worker finishes in the background (optimization is not
		// cancellable mid-enumeration) and still merges its metrics;
		// only the response is abandoned.
		status = http.StatusGatewayTimeout
		s.writeError(w, status, reqID, fmt.Errorf("request exceeded %s", s.cfg.Timeout))
	}
}

// do labels the worker goroutine with the request's identity (req=,
// template=) for the duration of the work, so external CPU/goroutine
// profiles taken through /debug/pprof attribute samples to requests, then
// runs it. The labels survive into the optimizer's worker pool only for
// work on this goroutine; enumeration workers carry their own phase=/rank=
// labels when label mode is on.
func (s *Server) do(reqID string, req OptimizeRequest) (out outcome) {
	tmpl := coverage.Template(req.SQL)
	labels := rpprof.Labels("req", reqID, "template", tmpl)
	rpprof.Do(context.Background(), labels, func(context.Context) {
		out = s.doLabeled(reqID, tmpl, req)
	})
	return out
}

// doLabeled performs one request's work: parse, optimize, optionally
// execute, render. It owns the request's private sink and merges its
// metrics into the shared registry on the way out.
func (s *Server) doLabeled(reqID, tmpl string, req OptimizeRequest) outcome {
	if s.testHold != nil {
		<-s.testHold
	}
	start := time.Now()
	allocs0 := obs.HeapAllocs()
	sink := obs.NewRequestSink(reqID)
	sink.Tee(s.bcast.publish)
	if !s.cfg.DisableProfiling {
		sink.EnableProf(obs.ProfOptions{})
	}
	defer s.reg.Merge(sink.Registry())
	// LIFO puts this before the merge above: flush any phase/rank tallies
	// the optimizer didn't publish itself (the parse phase, failed runs —
	// publishing is delta-aware, so double publishing is safe), then fold
	// this request's attribution into the rolling GET /profile aggregate.
	// The allocation bracket reads a process-global counter, so under
	// concurrent requests it is an upper bound, not an exact figure.
	defer func() {
		p := sink.Prof()
		if p == nil {
			return
		}
		p.PublishMetrics(sink.Registry())
		pr := prof.FromSink(sink)
		pr.ElapsedNS = time.Since(start).Nanoseconds()
		pr.Allocs = obs.HeapAllocs() - allocs0
		s.profMu.Lock()
		s.profAgg.Merge(pr)
		s.profRequests++
		s.profMu.Unlock()
	}()
	// LIFO puts this after the EvRequestDone emit below, so the whole
	// stream is final: fold it into the rolling coverage/Q-error ledger
	// and refresh the derived gauges (counters reach the registry via the
	// merge above), then into the flight recorder — whose watchdog wants
	// the complete trace (exec.feedback included) in its captures.
	status := http.StatusOK
	var (
		flightRes  *opt.Result
		flightExec bool
	)
	defer func() {
		s.ledger.Record(tmpl, sink.Events())
		s.ledger.PublishMetrics(s.reg, s.rules)
		s.foldFlight(reqID, tmpl, req, sink, flightRes, status, time.Since(start), flightExec)
		// Every consumer of the result is done (the response is rendered,
		// incident captures serialize plans to JSON): recycle the plan
		// arena so steady-state serving reuses slabs instead of growing
		// the heap per request.
		if flightRes != nil {
			flightRes.Release()
		}
	}()

	defer func() {
		//obsguard:ignore once per request; the serving sink is never nil
		sink.Emit(obs.Event{Name: EvRequestDone, A1: "/optimize",
			N1: int64(status), F1: time.Since(start).Seconds()})
	}()
	sink.Emit(obs.Event{Name: EvRequest, A1: "/optimize", A2: req.SQL}) //obsguard:ignore once per request; the serving sink is never nil

	fail := func(st int, err error) outcome {
		status = st
		return outcome{status: st, err: err}
	}
	if req.SQL == "" {
		return fail(http.StatusBadRequest, fmt.Errorf("missing \"sql\" field"))
	}
	// The SQL front end runs outside Optimize, so bill it to the profiler
	// explicitly as the "parse" phase (no-op when profiling is off).
	pa, pt := obs.HeapAllocs(), time.Now()
	g, err := sqlparse.Parse(req.SQL, s.cfg.Catalog)
	sink.ProfPhase("parse", time.Since(pt), obs.HeapAllocs()-pa) //obsguard:ignore once per request; ProfPhase args are alloc-free
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	opts := s.cfg.Options
	opts.Obs = sink
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	res, err := opt.New(s.cfg.Catalog, opts).Optimize(g)
	if err != nil {
		return fail(http.StatusUnprocessableEntity, err)
	}
	flightRes = res

	resp := &OptimizeResponse{
		Schema:    SchemaV1,
		RequestID: reqID,
		SQL:       req.SQL,
		Plan: PlanJSON{
			Fingerprint:   res.Best.Fingerprint(),
			EstimatedRows: res.Best.Props.Card,
			Cost:          costJSON(res.Best.Props.Cost),
		},
	}
	switch req.Format {
	case "", "tree":
		resp.Plan.Explain = s.explain(res.Best, req.Verbose)
	case "functional":
		resp.Plan.Functional = plan.Functional(res.Best)
	case "both":
		resp.Plan.Explain = s.explain(res.Best, req.Verbose)
		resp.Plan.Functional = plan.Functional(res.Best)
	default:
		return fail(http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want tree, functional, or both)", req.Format))
	}

	if req.Provenance {
		dag, err := provenance.FromResult(res)
		if err != nil {
			return fail(http.StatusInternalServerError, fmt.Errorf("provenance: %w", err))
		}
		var buf bytes.Buffer
		if err := dag.WriteJSON(&buf); err != nil {
			return fail(http.StatusInternalServerError, fmt.Errorf("provenance: %w", err))
		}
		resp.Provenance = json.RawMessage(buf.Bytes())
	}

	if req.Execute || req.Analyze {
		ex, err := s.execute(sink, res, g, req)
		if err != nil {
			return fail(http.StatusInternalServerError, fmt.Errorf("execute: %w", err))
		}
		resp.Execution = ex
		flightExec = true
	}

	resp.Stats = statsJSON(res.Stats, sink.Len())
	resp.Metrics = sink.Registry().Counters()
	return outcome{status: status, resp: resp}
}

// explain renders the plan tree.
func (s *Server) explain(p *plan.Node, verbose bool) string {
	if verbose {
		return plan.ExplainVerbose(p)
	}
	return plan.Explain(p)
}

// execute runs the chosen plan against the daemon's data. Runs are
// serialized: the storage cluster's resource counters are per-run state.
func (s *Server) execute(sink *obs.Sink, res *opt.Result, g *query.Graph, req OptimizeRequest) (*ExecutionJSON, error) {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	rt := exec.NewRuntime(s.cluster, s.cfg.Catalog)
	rt.Obs = sink
	rt.CollectOpStats = req.Analyze
	er, err := rt.Run(res.Best)
	if err != nil {
		return nil, err
	}
	limit := req.Limit
	if limit == 0 {
		limit = s.cfg.Limit
	}
	w := s.cfg.Options.Weights
	if w == (cost.Weights{}) {
		w = cost.DefaultWeights
	}
	out := executionJSON(er, w, g.SelectCols(s.cfg.Catalog), limit)
	if req.Analyze {
		out.Analyze = plan.ExplainAnalyze(res.Best, exec.Actuals(er, w))
	}
	return out, nil
}

// writeJSON writes a JSON response body.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.cfg.Log.Printf("response write: %v", err)
	}
}

// writeError writes the uniform JSON error body.
func (s *Server) writeError(w http.ResponseWriter, status int, reqID string, err error) {
	s.writeJSON(w, status, ErrorResponse{Schema: SchemaV1, RequestID: reqID, Error: err.Error()})
}
