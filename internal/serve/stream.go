package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"stars/internal/obs"
)

// EvDropped is the synthetic event a slow /events subscriber receives in
// place of the events it missed; N1 is how many were dropped since the last
// delivered event. It is generated per subscriber, never recorded in any
// sink.
const EvDropped = "serve.events.dropped"

// subscriber is one /events connection: a bounded buffer between the
// publishing request goroutines and the streaming handler. When the buffer
// is full the publisher drops rather than blocks — a slow tail must never
// stall an optimization.
type subscriber struct {
	ch      chan obs.Event
	dropped atomic.Int64
}

// broadcaster fans every observed event out to all live subscribers.
// publish is called from inside per-request sinks' locked sections (via
// Sink.Tee), so it must stay non-blocking and lock-light.
type broadcaster struct {
	mu     sync.RWMutex
	subs   map[*subscriber]struct{}
	closed bool

	published   *obs.Counter
	dropped     *obs.Counter
	subscribers *obs.Gauge
}

// newBroadcaster wires a broadcaster's own accounting into reg.
func newBroadcaster(reg *obs.Registry) *broadcaster {
	return &broadcaster{
		subs:        map[*subscriber]struct{}{},
		published:   reg.Counter("serve_events_published_total"),
		dropped:     reg.Counter("serve_events_dropped_total"),
		subscribers: reg.Gauge("serve_event_subscribers"),
	}
}

// publish delivers e to every subscriber with room, dropping (and counting)
// for the ones without.
func (b *broadcaster) publish(e obs.Event) {
	b.published.Add(1)
	b.mu.RLock()
	for sub := range b.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.RUnlock()
}

// subscribe registers a new bounded subscriber; nil after closeAll.
func (b *broadcaster) subscribe(buf int) *subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan obs.Event, buf)}
	b.subs[sub] = struct{}{}
	b.subscribers.Set(int64(len(b.subs)))
	return sub
}

// unsubscribe removes sub; pending buffered events are discarded.
func (b *broadcaster) unsubscribe(sub *subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, sub)
	b.subscribers.Set(int64(len(b.subs)))
}

// closeAll ends every stream (each handler sees its channel close) and
// refuses new subscribers — the first step of a graceful drain, since open
// streams would otherwise hold http.Server.Shutdown forever.
func (b *broadcaster) closeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		close(sub.ch)
		delete(b.subs, sub)
	}
	b.subscribers.Set(0)
}

// handleEvents streams live observability events. Default framing is NDJSON
// (one obs event per line, same wire form as Sink.WriteNDJSON, each tagged
// with its request id); an Accept header containing text/event-stream
// switches to Server-Sent Events with the event name in the SSE event field.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.bcast.subscribe(s.cfg.EventBuffer)
	if sub == nil {
		s.writeError(w, http.StatusServiceUnavailable, "", fmt.Errorf("server is draining"))
		return
	}
	defer s.bcast.unsubscribe(sub)

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(e obs.Event) error {
		if sse {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: ", e.Name); err != nil {
				return err
			}
			if err := obs.EncodeNDJSON(w, e); err != nil {
				return err
			}
			_, err := fmt.Fprint(w, "\n")
			return err
		}
		return obs.EncodeNDJSON(w, e)
	}
	for {
		select {
		case e, ok := <-sub.ch:
			if !ok {
				return // draining
			}
			if d := sub.dropped.Swap(0); d > 0 {
				if write(obs.Event{Kind: obs.KindInstant, Name: EvDropped, N1: d}) != nil {
					return
				}
			}
			if write(e) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
