package serve

import (
	"bytes"
	"log"
	"strings"
	"testing"

	"stars/internal/opt"
	"stars/internal/star"
)

// TestBootLintRejectsBrokenRules pins that a daemon refuses to boot on a
// rule set with lint errors — a broken repertoire would fail every request.
func TestBootLintRejectsBrokenRules(t *testing.T) {
	rs := star.DefaultRules()
	broken, err := star.ParseFile(`star JoinRoot(T1, T2, P) = Missing(T1, T2, P)`, "broken.star")
	if err != nil {
		t.Fatal(err)
	}
	rs.Merge(broken)
	_, err = New(Config{Options: opt.Options{Rules: rs}})
	if err == nil || !strings.Contains(err.Error(), "lint error") {
		t.Fatalf("New = %v, want a lint-error refusal", err)
	}
}

// TestBootLintLogsWarnings pins that warn-level findings are logged at boot
// but do not prevent serving.
func TestBootLintLogsWarnings(t *testing.T) {
	rs := star.DefaultRules()
	warned, err := star.ParseFile(`star Orphan(T, P) = Glue(T, P)`, "warn.star")
	if err != nil {
		t.Fatal(err)
	}
	rs.Merge(warned)
	var buf bytes.Buffer
	_, err = New(Config{
		Options: opt.Options{Rules: rs},
		Log:     log.New(&buf, "", 0),
	})
	if err != nil {
		t.Fatalf("warnings must not refuse boot: %v", err)
	}
	if !strings.Contains(buf.String(), "SC010") || !strings.Contains(buf.String(), "Orphan") {
		t.Fatalf("boot log is missing the SC010 warning:\n%s", buf.String())
	}
}

// TestBootSkipsLintWithoutCustomRules pins that the default repertoire boots
// without a lint pass (nil Options.Rules means nothing user-supplied to
// check).
func TestBootSkipsLintWithoutCustomRules(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(Config{Log: log.New(&buf, "", 0)}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "lint:") {
		t.Fatalf("unexpected lint output for the built-in repertoire:\n%s", buf.String())
	}
}
