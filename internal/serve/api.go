package serve

import (
	"encoding/json"

	"stars/internal/cost"
	"stars/internal/exec"
	"stars/internal/expr"
	"stars/internal/opt"
	"stars/internal/plan"
)

// SchemaV1 identifies the request/response JSON schema of every /optimize
// round-trip and error body. Documented in docs/SERVING.md.
const SchemaV1 = "stars/serve/v1"

// OptimizeRequest is the POST /optimize body.
type OptimizeRequest struct {
	// SQL is the query text (one SELECT statement).
	SQL string `json:"sql"`
	// Format selects the plan rendering(s) returned: "tree" (EXPLAIN,
	// the default), "functional" (the paper's nested-function notation),
	// or "both".
	Format string `json:"format,omitempty"`
	// Verbose renders the tree with full property vectors.
	Verbose bool `json:"verbose,omitempty"`
	// Provenance embeds the run's derivation DAG (stars/provenance/v1).
	Provenance bool `json:"provenance,omitempty"`
	// Execute also runs the chosen plan against the daemon's generated
	// data. Executions are serialized server-side (the storage cluster is
	// a shared resource); optimization itself is fully concurrent.
	Execute bool `json:"execute,omitempty"`
	// Analyze implies Execute and returns EXPLAIN ANALYZE text with
	// per-operator estimated-vs-actual figures.
	Analyze bool `json:"analyze,omitempty"`
	// Limit caps the rows echoed back when executing (default 100, -1 for
	// all).
	Limit int `json:"limit,omitempty"`
}

// OptimizeResponse is the POST /optimize success body.
type OptimizeResponse struct {
	Schema    string `json:"schema"`
	RequestID string `json:"request_id"`
	SQL       string `json:"sql"`
	// Plan describes the chosen plan.
	Plan PlanJSON `json:"plan"`
	// Stats are the optimizer-effort counters for this request.
	Stats StatsJSON `json:"stats"`
	// Metrics is the request's private counter snapshot (star_*, glue_*,
	// plantable_*, opt_*, exec_*). The daemon's /metrics endpoint serves
	// the same names aggregated across all requests.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// Provenance is the derivation DAG (stars/provenance/v1) when
	// requested.
	Provenance json.RawMessage `json:"provenance,omitempty"`
	// Execution reports the run when Execute/Analyze was requested.
	Execution *ExecutionJSON `json:"execution,omitempty"`
}

// PlanJSON renders the chosen plan.
type PlanJSON struct {
	// Explain is the indented tree rendering (empty when Format is
	// "functional").
	Explain string `json:"explain,omitempty"`
	// Functional is the paper's nested-function notation (set when Format
	// is "functional" or "both").
	Functional string `json:"functional,omitempty"`
	// Fingerprint identifies the plan stably across runs and processes.
	Fingerprint string `json:"fingerprint"`
	// EstimatedRows is the optimizer's output-cardinality estimate.
	EstimatedRows float64 `json:"estimated_rows"`
	// Cost is the estimated resource vector.
	Cost CostJSON `json:"cost"`
}

// CostJSON is the estimated resource vector of a plan.
type CostJSON struct {
	Total float64 `json:"total"`
	IO    float64 `json:"io"`
	CPU   float64 `json:"cpu"`
	Msg   float64 `json:"msg"`
	Bytes float64 `json:"bytes"`
}

// costJSON converts a plan cost.
func costJSON(c plan.Cost) CostJSON {
	return CostJSON{Total: c.Total, IO: c.IO, CPU: c.CPU, Msg: c.Msg, Bytes: c.Bytes}
}

// StatsJSON reports one optimization's effort counters.
type StatsJSON struct {
	RuleRefs      int64   `json:"rule_refs"`
	AltsFired     int64   `json:"alts_fired"`
	AltsRejected  int64   `json:"alts_rejected"`
	PlansBuilt    int64   `json:"plans_built"`
	PlansInserted int64   `json:"plans_inserted"`
	PlansPruned   int64   `json:"plans_pruned"`
	PlansRetained int64   `json:"plans_retained"`
	Subsets       int64   `json:"subsets"`
	Pairs         int64   `json:"pairs"`
	PruneRate     float64 `json:"prune_rate"`
	ElapsedUs     int64   `json:"elapsed_us"`
	Events        int64   `json:"events"`
}

// statsJSON converts optimizer stats; events is the request sink's census.
func statsJSON(st opt.Stats, events int64) StatsJSON {
	out := StatsJSON{
		RuleRefs:      st.Star.RuleRefs,
		AltsFired:     st.Star.AltsFired,
		AltsRejected:  st.Star.AltsRejected,
		PlansBuilt:    st.Star.PlansBuilt,
		PlansInserted: st.PlansInserted,
		PlansPruned:   st.PlansPruned,
		PlansRetained: st.PlansRetained,
		Subsets:       st.Subsets,
		Pairs:         st.Pairs,
		ElapsedUs:     st.Elapsed.Microseconds(),
		Events:        events,
	}
	if st.PlansInserted+st.PlansPruned > 0 {
		out.PruneRate = float64(st.PlansPruned) / float64(st.PlansInserted+st.PlansPruned)
	}
	return out
}

// ExecutionJSON reports one plan execution.
type ExecutionJSON struct {
	// Columns names the projected output columns.
	Columns []string `json:"columns"`
	// Rows is the (possibly truncated) result set, rendered as strings.
	Rows [][]string `json:"rows"`
	// RowCount is the full result cardinality before truncation.
	RowCount int64 `json:"row_count"`
	// Truncated reports whether Rows was capped by the request's Limit.
	Truncated bool `json:"truncated,omitempty"`
	// ActualCost is the measured resource usage in cost-model units,
	// directly comparable with plan.cost.total.
	ActualCost float64 `json:"actual_cost"`
	Pages      int64   `json:"pages"`
	Messages   int64   `json:"messages"`
	Bytes      int64   `json:"bytes_shipped"`
	CPUOps     int64   `json:"cpu_ops"`
	// Analyze is the EXPLAIN ANALYZE rendering when requested.
	Analyze string `json:"analyze,omitempty"`
}

// executionJSON converts an execution result under the given weights,
// projecting rows onto the query's SELECT list (plans carry working columns
// like TIDs that API clients don't want).
func executionJSON(er *exec.Result, w cost.Weights, cols []expr.ColID, limit int) *ExecutionJSON {
	out := &ExecutionJSON{
		RowCount:   er.Stats.RowsOut,
		ActualCost: er.Stats.ActualCost(w),
		Pages:      er.Stats.IO.TotalPages(),
		Messages:   er.Stats.Messages,
		Bytes:      er.Stats.BytesShipped,
		CPUOps:     er.Stats.CPUOps,
	}
	idx := map[expr.ColID]int{}
	for i, c := range er.Schema {
		idx[c] = i
	}
	for _, c := range cols {
		out.Columns = append(out.Columns, c.String())
	}
	n := len(er.Rows)
	if limit >= 0 && n > limit {
		n = limit
		out.Truncated = true
	}
	out.Rows = make([][]string, 0, n)
	for _, row := range er.Rows[:n] {
		r := make([]string, len(cols))
		for i, c := range cols {
			if p, ok := idx[c]; ok && p < len(row) {
				r[i] = row[p].String()
			} else {
				r[i] = "?"
			}
		}
		out.Rows = append(out.Rows, r)
	}
	return out
}

// ErrorResponse is every non-200 JSON body.
type ErrorResponse struct {
	Schema    string `json:"schema"`
	RequestID string `json:"request_id,omitempty"`
	Error     string `json:"error"`
}
