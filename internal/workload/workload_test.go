package workload

import (
	"testing"

	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/query"
	"stars/internal/storage"
)

func TestGeneratedCatalogsValidate(t *testing.T) {
	for _, cat := range []interface{ Validate() error }{
		EmpDept(), ChainCatalog(5, 100, 50), StarCatalog(3, 1000, 20),
	} {
		if err := cat.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGeneratedQueriesValidate(t *testing.T) {
	if err := Figure1Query().Validate(EmpDept()); err != nil {
		t.Fatal(err)
	}
	if err := ChainQuery(4).Validate(ChainCatalog(4, 100)); err != nil {
		t.Fatal(err)
	}
	if err := StarQuery(3).Validate(StarCatalog(3, 1000, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestChainQueryShape(t *testing.T) {
	g := ChainQuery(4)
	if len(g.Quants) != 4 || g.Preds.Len() != 3 {
		t.Fatalf("chain 4: %d quants, %d preds", len(g.Quants), g.Preds.Len())
	}
	// Adjacent tables connected, ends not.
	if !g.Connected(expr.NewTableSet("T1"), expr.NewTableSet("T2")) {
		t.Error("T1-T2 connected")
	}
	if g.Connected(expr.NewTableSet("T1"), expr.NewTableSet("T3")) {
		t.Error("T1-T3 disconnected")
	}
}

func TestPopulateMatchesCatalog(t *testing.T) {
	cat := ChainCatalog(2, 500, 100)
	cl := storage.NewCluster()
	Populate(cl, cat, 1)
	td := cl.Store("").Table("T1")
	if td == nil || td.Heap.NumRows() != 500 {
		t.Fatalf("T1 rows = %v", td.Heap.NumRows())
	}
	if cl.Store("").Table("T2").Heap.NumRows() != 100 {
		t.Fatal("T2 rows")
	}
	// Counters were reset after loading.
	if cl.TotalCounters().HeapPageWrites != 0 {
		t.Error("populate must reset counters")
	}
}

func TestPopulateIsDeterministic(t *testing.T) {
	cat := ChainCatalog(1, 50)
	c1, c2 := storage.NewCluster(), storage.NewCluster()
	Populate(c1, cat, 42)
	Populate(c2, cat, 42)
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "T1", Table: "T1"}},
		Preds:  expr.NewPredSet(),
	}
	r1 := Oracle(c1, cat, g)
	r2 := Oracle(c2, cat, g)
	if len(r1) != 50 || len(r1) != len(r2) {
		t.Fatal("sizes")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	c3 := storage.NewCluster()
	Populate(c3, cat, 43)
	r3 := Oracle(c3, cat, g)
	same := true
	for i := range r1 {
		if r1[i] != r3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestPopulateRespectsDeclaredOrder(t *testing.T) {
	cat := ChainCatalog(1, 300)
	cat.Table("T1").Order = []string{"J"}
	cl := storage.NewCluster()
	Populate(cl, cat, 9)
	var last int64 = -1 << 62
	cl.Store("").Table("T1").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		v := r[1].Int() // J is the second column
		if v < last {
			t.Fatal("rows not in declared order")
		}
		last = v
		return true
	})
}

func TestPopulateStringWidths(t *testing.T) {
	cat := ChainCatalog(1, 10)
	cl := storage.NewCluster()
	Populate(cl, cat, 1)
	cl.Store("").Table("T1").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		// PAD is declared 32 bytes wide; datum width = len+1.
		if r[3].Width() != 32 {
			t.Fatalf("pad width = %d", r[3].Width())
		}
		return true
	})
}

func TestOracleManualCrossCheck(t *testing.T) {
	// A tiny hand-built instance with a known answer.
	cat := ChainCatalog(2, 3, 3)
	cl := storage.NewCluster()
	st := cl.Store("")
	t1 := st.CreateTable("T1", []string{"ID", "J", "K", "PAD"}, 32)
	t2 := st.CreateTable("T2", []string{"ID", "J", "K", "PAD"}, 32)
	row := func(id, j, k int64) datum.Row {
		return datum.Row{datum.NewInt(id), datum.NewInt(j), datum.NewInt(k), datum.NewString("p")}
	}
	// T1.K values: 1, 2, 2; T2.J values: 2, 2, 3 -> join on K=J gives 2*2=4 rows.
	t1.Heap.Insert(row(1, 0, 1), nil)
	t1.Heap.Insert(row(2, 0, 2), nil)
	t1.Heap.Insert(row(3, 0, 2), nil)
	t2.Heap.Insert(row(10, 2, 0), nil)
	t2.Heap.Insert(row(11, 2, 0), nil)
	t2.Heap.Insert(row(12, 3, 0), nil)

	got := Oracle(cl, cat, ChainQuery(2))
	if len(got) != 4 {
		t.Fatalf("oracle rows = %d, want 4: %v", len(got), got)
	}
}

func TestRenderRowsMatchesOracleEncoding(t *testing.T) {
	cat := ChainCatalog(1, 5)
	cl := storage.NewCluster()
	Populate(cl, cat, 2)
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "T1", Table: "T1"}},
		Preds:  expr.NewPredSet(),
		Select: []expr.ColID{{Table: "T1", Col: "ID"}, {Table: "T1", Col: "J"}},
	}
	want := Oracle(cl, cat, g)
	// Read the rows directly and render them through RenderRows.
	var rows []datum.Row
	schema := []expr.ColID{
		{Table: "T1", Col: "ID"}, {Table: "T1", Col: "J"},
		{Table: "T1", Col: "K"}, {Table: "T1", Col: "PAD"},
	}
	cl.Store("").Table("T1").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		rows = append(rows, r)
		return true
	})
	got := RenderRows(schema, rows, g.Select)
	if len(got) != len(want) {
		t.Fatalf("%d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestPopulateEmpDeptHasHaas(t *testing.T) {
	cat := EmpDept()
	cl := storage.NewCluster()
	PopulateEmpDept(cl, cat, 5)
	found := false
	cl.Store("").Table("DEPT").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		if r[1].Kind() == datum.KindString && r[1].Str() == "Haas" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("department managed by Haas must exist")
	}
	// EMP is physically ordered by DNO (clustering declared in the catalog).
	var last int64 = -1
	cl.Store("").Table("EMP").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		if r[1].Int() < last {
			t.Fatal("EMP not clustered by DNO")
		}
		last = r[1].Int()
		return true
	})
}

func TestPopulateZipfSkew(t *testing.T) {
	cat := ChainCatalog(1, 5000)
	cat.Table("T1").Column("J").Skew = 0.5
	cl := storage.NewCluster()
	Populate(cl, cat, 4)
	counts := map[int64]int{}
	cl.Store("").Table("T1").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		counts[r[1].Int()]++
		return true
	})
	// Zipf concentrates mass on the smallest values: value 0 must be far
	// more frequent than the uniform expectation (5000/500 = 10).
	if counts[0] < 100 {
		t.Fatalf("value 0 count = %d; skew not applied", counts[0])
	}
	// Deterministic for a fixed seed.
	cl2 := storage.NewCluster()
	Populate(cl2, cat, 4)
	counts2 := map[int64]int{}
	cl2.Store("").Table("T1").Heap.Scan(nil, func(_ storage.TID, r datum.Row) bool {
		counts2[r[1].Int()]++
		return true
	})
	if counts[0] != counts2[0] {
		t.Fatal("skewed generation must stay deterministic")
	}
}
