package workload

import (
	"fmt"

	"stars/internal/catalog"
	"stars/internal/query"
)

// CorpusEntry is one named workload query: a catalog and a query graph over
// it, ready to optimize.
type CorpusEntry struct {
	// Name identifies the entry in reports ("figure1", "chain3", ...).
	Name string
	// Cat is the catalog the query runs against.
	Cat *catalog.Catalog
	// Query is the query graph.
	Query *query.Graph
}

// Corpus returns the representative workload the coverage tooling runs:
// the paper's Figure 1 query over the local and a distributed EMP/DEPT
// catalog (the distributed variant exercises SHIP veneers, JoinSite and
// RemoteJoin alternatives), chain joins of increasing width (composite
// inners, join permutations), and star joins (fact-table fan-out). The
// `starburst cover` command, `starbench -coverage`, and CI all share this
// list so their coverage numbers agree.
func Corpus() []CorpusEntry {
	entries := []CorpusEntry{
		{Name: "figure1", Cat: EmpDept(), Query: Figure1Query()},
		{Name: "figure1-dist", Cat: DistributedEmpDept(), Query: Figure1Query()},
	}
	for _, n := range []int{2, 3, 4, 5} {
		entries = append(entries, CorpusEntry{
			Name:  fmt.Sprintf("chain%d", n),
			Cat:   ChainCatalog(n),
			Query: ChainQuery(n),
		})
	}
	for _, k := range []int{3, 4} {
		entries = append(entries, CorpusEntry{
			Name:  fmt.Sprintf("star%d", k),
			Cat:   StarCatalog(k, 100000, 1000),
			Query: StarQuery(k),
		})
	}
	return entries
}

// DistributedEmpDept is EmpDept spread over two sites: the query arrives at
// LA but DEPT lives at NY, so every plan must SHIP something — the
// distributed repertoire (JoinSite, RemoteJoin, SitedJoin, SHIP veneers)
// gets exercised.
func DistributedEmpDept() *catalog.Catalog {
	cat := EmpDept()
	cat.Sites = []string{"LA", "NY"}
	cat.QuerySite = "LA"
	cat.Table("DEPT").Site = "NY"
	return cat
}
