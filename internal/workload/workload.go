// Package workload supplies deterministic synthetic schemas, data, and
// query generators for the examples, tests, and the experiment harness, plus
// a brute-force reference evaluator ("oracle") that tests compare executed
// plans against.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"stars/internal/catalog"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/query"
	"stars/internal/storage"
)

// EmpDept returns the paper's Section 2.1 catalog: DEPT(DNO, MGR, BUDGET)
// and EMP(ENO, DNO, NAME, ADDRESS, SAL) with the index on EMP.DNO Figure 1
// uses.
func EmpDept() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "DEPT",
		Cols: []*catalog.Column{
			{Name: "DNO", Type: datum.KindInt, NDV: 100},
			{Name: "MGR", Type: datum.KindString, NDV: 90, Width: 12},
			{Name: "BUDGET", Type: datum.KindFloat, NDV: 100},
		},
		Card: 100,
	})
	cat.AddTable(&catalog.Table{
		Name: "EMP",
		Cols: []*catalog.Column{
			{Name: "ENO", Type: datum.KindInt, NDV: 10000},
			{Name: "DNO", Type: datum.KindInt, NDV: 100},
			{Name: "NAME", Type: datum.KindString, NDV: 9000, Width: 16},
			{Name: "ADDRESS", Type: datum.KindString, NDV: 9500, Width: 24},
			{Name: "SAL", Type: datum.KindFloat, NDV: 5000},
		},
		Card: 10000,
		Paths: []*catalog.AccessPath{
			{Name: "EMPDNO", Table: "EMP", Cols: []string{"DNO"}, Clustered: true},
		},
	})
	mustValidate(cat)
	return cat
}

// Figure1Query returns the query of Figure 1: DEPT join EMP on DNO with
// MGR = 'Haas', projecting DNO, MGR, NAME, ADDRESS.
func Figure1Query() *query.Graph {
	return &query.Graph{
		Quants: []query.Quantifier{
			{Name: "DEPT", Table: "DEPT"},
			{Name: "EMP", Table: "EMP"},
		},
		Preds: expr.NewPredSet(
			&expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "DNO"), R: expr.C("EMP", "DNO")},
			&expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "MGR"), R: &expr.Const{Val: datum.NewString("Haas")}},
		),
		Select: []expr.ColID{
			{Table: "DEPT", Col: "DNO"}, {Table: "DEPT", Col: "MGR"},
			{Table: "EMP", Col: "NAME"}, {Table: "EMP", Col: "ADDRESS"},
		},
	}
}

// PopulateEmpDept fills a cluster with EMP/DEPT data in which department 42
// is managed by 'Haas' (so Figure 1's query returns rows), each DNO in
// 0..99, and employees spread uniformly over departments.
func PopulateEmpDept(cluster *storage.Cluster, cat *catalog.Catalog, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dept := cat.Table("DEPT")
	emp := cat.Table("EMP")
	dtd := cluster.Store(cat.SiteOf("DEPT")).CreateTable("DEPT", dept.ColNames(), dept.RowWidth())
	for i := int64(0); i < dept.Card; i++ {
		mgr := fmt.Sprintf("mgr%d", rng.Int63n(90))
		if i == 42 {
			mgr = "Haas"
		}
		dtd.Heap.Insert(datum.Row{
			datum.NewInt(i % 100),
			datum.NewString(mgr),
			datum.NewFloat(float64(rng.Int63n(1000000))),
		}, nil)
	}
	etd := cluster.Store(cat.SiteOf("EMP")).CreateTable("EMP", emp.ColNames(), emp.RowWidth())
	rows := make([]datum.Row, 0, emp.Card)
	for i := int64(0); i < emp.Card; i++ {
		rows = append(rows, datum.Row{
			datum.NewInt(i),
			datum.NewInt(rng.Int63n(100)),
			datum.NewString(fmt.Sprintf("name%d", i)),
			datum.NewString(fmt.Sprintf("%d Main St", rng.Int63n(9500))),
			datum.NewFloat(float64(20000 + rng.Int63n(80000))),
		})
	}
	// The EMPDNO index is declared clustering: store the rows in DNO order
	// so TID fetches through it really are sequential.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][1].Less(rows[j][1]) })
	for _, r := range rows {
		etd.Heap.Insert(r, nil)
	}
	cluster.ResetCounters()
}

func mustValidate(cat *catalog.Catalog) {
	if err := cat.Validate(); err != nil {
		panic(fmt.Sprintf("workload: invalid catalog: %v", err))
	}
}

// ChainCatalog builds n tables T1..Tn where Ti has columns ID, J, K, PAD and
// cardinality cards[i] (cards is cycled if shorter than n). Each table gets
// an index on J. A chain query joins Ti.K = Ti+1.J.
func ChainCatalog(n int, cards ...int64) *catalog.Catalog {
	if len(cards) == 0 {
		cards = []int64{1000}
	}
	cat := catalog.New()
	for i := 1; i <= n; i++ {
		card := cards[(i-1)%len(cards)]
		ndv := card / 10
		if ndv < 2 {
			ndv = 2
		}
		name := fmt.Sprintf("T%d", i)
		cat.AddTable(&catalog.Table{
			Name: name,
			Cols: []*catalog.Column{
				{Name: "ID", Type: datum.KindInt, NDV: card},
				{Name: "J", Type: datum.KindInt, NDV: ndv},
				{Name: "K", Type: datum.KindInt, NDV: ndv},
				{Name: "PAD", Type: datum.KindString, NDV: card, Width: 32},
			},
			Card: card,
			Paths: []*catalog.AccessPath{
				{Name: name + "_J", Table: name, Cols: []string{"J"}},
			},
		})
	}
	mustValidate(cat)
	return cat
}

// ChainQuery joins T1..Tn with Ti.K = Ti+1.J, selecting every ID column.
func ChainQuery(n int) *query.Graph {
	g := &query.Graph{}
	var preds []expr.Expr
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("T%d", i)
		g.Quants = append(g.Quants, query.Quantifier{Name: name, Table: name})
		g.Select = append(g.Select, expr.ColID{Table: name, Col: "ID"})
		if i > 1 {
			prev := fmt.Sprintf("T%d", i-1)
			preds = append(preds, &expr.Cmp{Op: expr.EQ, L: expr.C(prev, "K"), R: expr.C(name, "J")})
		}
	}
	g.Preds = expr.NewPredSet(preds...)
	return g
}

// StarCatalog builds a fact table F (factCard rows) and k dimension tables
// D1..Dk (dimCard rows each); F has a foreign key FKi per dimension, with an
// index on each.
func StarCatalog(k int, factCard, dimCard int64) *catalog.Catalog {
	cat := catalog.New()
	fact := &catalog.Table{
		Name: "F",
		Cols: []*catalog.Column{
			{Name: "ID", Type: datum.KindInt, NDV: factCard},
			{Name: "VAL", Type: datum.KindFloat, NDV: factCard},
		},
		Card: factCard,
	}
	for i := 1; i <= k; i++ {
		fk := fmt.Sprintf("FK%d", i)
		fact.Cols = append(fact.Cols, &catalog.Column{Name: fk, Type: datum.KindInt, NDV: dimCard})
		fact.Paths = append(fact.Paths, &catalog.AccessPath{
			Name: "F_" + fk, Table: "F", Cols: []string{fk},
		})
		cat.AddTable(&catalog.Table{
			Name: fmt.Sprintf("D%d", i),
			Cols: []*catalog.Column{
				{Name: "ID", Type: datum.KindInt, NDV: dimCard},
				{Name: "ATTR", Type: datum.KindString, NDV: dimCard / 2, Width: 16},
			},
			Card: dimCard,
		})
	}
	cat.AddTable(fact)
	mustValidate(cat)
	return cat
}

// StarQuery joins F with its first k dimensions on the foreign keys.
func StarQuery(k int) *query.Graph {
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "F", Table: "F"}},
		Select: []expr.ColID{{Table: "F", Col: "ID"}},
	}
	var preds []expr.Expr
	for i := 1; i <= k; i++ {
		d := fmt.Sprintf("D%d", i)
		g.Quants = append(g.Quants, query.Quantifier{Name: d, Table: d})
		g.Select = append(g.Select, expr.ColID{Table: d, Col: "ATTR"})
		preds = append(preds, &expr.Cmp{
			Op: expr.EQ,
			L:  expr.C("F", fmt.Sprintf("FK%d", i)),
			R:  expr.C(d, "ID"),
		})
	}
	g.Preds = expr.NewPredSet(preds...)
	return g
}

// Populate fills a cluster with deterministic synthetic rows matching every
// catalog table's cardinality and column NDVs. Column values are uniform
// over their NDV domain unless the column declares Skew (then Zipf-
// distributed); int and string domains are v = 0..NDV-1 (strings as "v<k>",
// padded to the declared width); floats spread over [Lo, Hi] when bounded,
// else [0, NDV).
func Populate(cluster *storage.Cluster, cat *catalog.Catalog, seed int64) {
	names := cat.TableNames()
	for _, name := range names {
		t := cat.Table(name)
		rng := rand.New(rand.NewSource(seed ^ int64(len(name))<<32 ^ hashName(name)))
		st := cluster.Store(cat.SiteOf(name))
		td := st.CreateTable(name, t.ColNames(), t.RowWidth())
		rows := make([]datum.Row, 0, t.Card)
		for i := int64(0); i < t.Card; i++ {
			row := make(datum.Row, len(t.Cols))
			for ci, col := range t.Cols {
				row[ci] = genValue(rng, col, i)
			}
			rows = append(rows, row)
		}
		if len(t.Order) > 0 {
			keys := make([]int, 0, len(t.Order))
			for _, oc := range t.Order {
				for ci, col := range t.Cols {
					if col.Name == oc {
						keys = append(keys, ci)
					}
				}
			}
			sort.SliceStable(rows, func(i, j int) bool {
				return datum.CompareRows(rows[i], rows[j], keys) < 0
			})
		}
		for _, row := range rows {
			td.Heap.Insert(row, nil)
		}
	}
	cluster.ResetCounters()
}

func hashName(s string) int64 {
	h := int64(1469598103934665603)
	for _, c := range s {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

func genValue(rng *rand.Rand, col *catalog.Column, rowIdx int64) datum.Datum {
	ndv := col.NDV
	if ndv <= 0 {
		ndv = 100
	}
	draw := func() int64 {
		if col.Skew > 0 && ndv >= 2 {
			z := rand.NewZipf(rng, 1+col.Skew, 1, uint64(ndv-1))
			return int64(z.Uint64())
		}
		return rng.Int63n(ndv)
	}
	switch col.Type {
	case datum.KindInt:
		return datum.NewInt(draw())
	case datum.KindFloat:
		if col.Lo != nil && col.Hi != nil {
			return datum.NewFloat(*col.Lo + rng.Float64()*(*col.Hi-*col.Lo))
		}
		return datum.NewFloat(float64(rng.Int63n(ndv)))
	case datum.KindString:
		// Pad to the declared average width so executed byte counts match
		// the statistics the optimizer planned with.
		s := fmt.Sprintf("v%d", draw())
		for len(s) < col.AvgWidth()-1 {
			s += "_"
		}
		return datum.NewString(s)
	case datum.KindBool:
		return datum.NewBool(rng.Intn(2) == 0)
	default:
		return datum.Null
	}
}

// Oracle evaluates the query by brute-force nested iteration directly over
// the stored data and returns the projected result as a sorted multiset of
// rendered rows — the reference answer any correct plan must reproduce. Each
// predicate is checked as soon as all of its quantifiers are bound, so
// selective queries stay tractable while the evaluation remains trivially
// auditable.
func Oracle(cluster *storage.Cluster, cat *catalog.Catalog, g *query.Graph) []string {
	sel := g.SelectCols(cat)
	// predsAt[i] holds the predicates that become fully bound once
	// quantifiers 0..i are bound.
	predsAt := make([][]expr.Expr, len(g.Quants))
	pos := map[string]int{}
	for i, q := range g.Quants {
		pos[q.Name] = i
	}
	for _, p := range g.Preds.Slice() {
		last := 0
		for _, t := range expr.Tables(p) {
			if pos[t] > last {
				last = pos[t]
			}
		}
		predsAt[last] = append(predsAt[last], p)
	}

	var out []string
	binding := expr.MapBinding{}
	var rec func(qi int)
	rec = func(qi int) {
		if qi == len(g.Quants) {
			row := make([]string, len(sel))
			for i, c := range sel {
				v, _ := binding.ColValue(c)
				row[i] = v.String()
			}
			out = append(out, join(row))
			return
		}
		q := g.Quants[qi]
		t := cat.Table(q.Table)
		td := cluster.Store(cat.SiteOf(q.Table)).Table(q.Table)
		if td == nil {
			return
		}
		cur := td.Heap.Cursor(nil)
	rows:
		for {
			_, row, ok := cur.Next()
			if !ok {
				break
			}
			for ci, col := range t.Cols {
				binding[expr.ColID{Table: q.Name, Col: col.Name}] = row[ci]
			}
			for _, p := range predsAt[qi] {
				if !expr.EvalBool(p, binding) {
					continue rows
				}
			}
			rec(qi + 1)
		}
		for _, col := range t.Cols {
			delete(binding, expr.ColID{Table: q.Name, Col: col.Name})
		}
	}
	rec(0)
	sort.Strings(out)
	return out
}

func join(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "|"
		}
		s += p
	}
	return s
}

// RenderRows renders executed rows projected onto sel as the same sorted
// multiset encoding Oracle uses.
func RenderRows(schema []expr.ColID, rows []datum.Row, sel []expr.ColID) []string {
	idx := map[expr.ColID]int{}
	for i, c := range schema {
		idx[c] = i
	}
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(sel))
		for i, c := range sel {
			p, ok := idx[c]
			if !ok {
				parts[i] = "?"
				continue
			}
			parts[i] = r[p].String()
		}
		out = append(out, join(parts))
	}
	sort.Strings(out)
	return out
}
