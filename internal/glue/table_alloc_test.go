package glue

import (
	"testing"

	"stars/internal/plan"
)

// TestProbePathsAllocationFree pins the plan table's hot probe paths at zero
// allocations: Lookup and a duplicate Offer build no strings and no
// intermediate slices per probe — the table-set key is cached on the set and
// the predicate set hashes by its cached per-predicate keys. A regression
// here (say, a probe that re-renders tablesKey with strings.Join) fails the
// exact-zero comparison.
func TestProbePathsAllocationFree(t *testing.T) {
	pt := NewPlanTable()
	ts := deptSet()
	cheap := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	pt.Insert(ts, predsK, []*plan.Node{cheap})

	if got := testing.AllocsPerRun(1000, func() {
		if pt.Lookup(ts, predsK) == nil {
			t.Fatal("lookup lost the entry")
		}
	}); got != 0 {
		t.Errorf("Lookup (hit) allocates %.1f per probe, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		if pt.Lookup(ts, predsOther) != nil {
			t.Fatal("lookup invented an entry")
		}
	}); got != 0 {
		t.Errorf("Lookup (miss) allocates %.1f per probe, want 0", got)
	}
	offer := []*plan.Node{cheap}
	if got := testing.AllocsPerRun(1000, func() {
		pt.Insert(ts, predsK, offer)
	}); got != 0 {
		t.Errorf("duplicate Offer allocates %.1f per probe, want 0", got)
	}

	// The overlay read path is probed at every enumeration step; it must be
	// as free as the base path when the overlay holds nothing local.
	ov := NewOverlay(pt)
	if got := testing.AllocsPerRun(1000, func() {
		if ov.Lookup(ts, predsK) == nil {
			t.Fatal("overlay lookup lost the base entry")
		}
	}); got != 0 {
		t.Errorf("overlay Lookup allocates %.1f per probe, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		if !ov.HasEntry(ts) {
			t.Fatal("overlay HasEntry lost the base entry")
		}
	}); got != 0 {
		t.Errorf("overlay HasEntry allocates %.1f per probe, want 0", got)
	}
}
