// Package glue implements the paper's Glue mechanism (Section 3.2): given a
// required set of properties for a stream, it (1) finds or creates plans for
// the required relational properties — referencing the top-most access STAR
// when none exist, (2) injects "veneer" Glue operators (SHIP, SORT, STORE,
// BUILDINDEX, FILTER) to make plans satisfy the required physical
// properties, and (3) returns the cheapest satisfying plan (or, optionally,
// all of them). Figure 3 of the paper is exactly this module's behaviour.
//
// The package also owns the plan table: the data structure, hashed on the
// tables and predicates (Section 4.4), that makes "do plans exist for these
// relational properties?" a dictionary lookup.
package glue

import (
	"sort"
	"time"

	"stars/internal/expr"
	"stars/internal/obs"
	"stars/internal/plan"
)

// entryKey addresses one plan-table entry: the table set's cached canonical
// key plus a 64-bit hash of the predicate set's canonical keys. Probing
// builds no strings — both components come off the sets unchanged.
type entryKey struct {
	tk string
	ph uint64
}

// entry is one (TABLES, PREDS) cell of the plan table. The predicate set is
// retained for exact verification (two distinct sets hashing alike chain via
// next); pk is the canonical predicate key, rendered once at entry creation
// for observability events and ForEach.
type entry struct {
	tables expr.TableSet
	preds  expr.PredSet
	pk     string
	plans  []*plan.Node
	next   *entry
}

// PlanTable stores every Set of Alternative Plans produced so far, keyed by
// (TABLES, PREDS) — the relational properties of Figure 2. Within one entry
// only non-dominated plans are retained: a plan survives unless some other
// plan is at least as cheap and offers every physical property it offers.
type PlanTable struct {
	entries  map[entryKey]*entry
	byTables map[string][]*entry // entries per table set, in creation order
	// Inserted counts insertion attempts; Pruned counts plans rejected or
	// evicted by dominance. PruneDisabled turns dominance off (ablation).
	Inserted      int64
	Pruned        int64
	PruneDisabled bool
	// Obs, when enabled, receives plantable.insert / plantable.prune
	// events.
	Obs *obs.Sink

	// base, when non-nil, makes this table an overlay: reads fall through
	// to base (which must stay frozen while the overlay is live), writes
	// stay local, and dominance decisions consider base plans without
	// evicting them — eviction is deferred to Absorb, which replays the
	// overlay's writes into base in their original order. Overlays are the
	// unit of isolation of the parallel join enumeration: each subset task
	// writes into its own overlay over the committed smaller-subset
	// entries, and the driver absorbs overlays at the rank barrier in
	// ascending subset order, so the merged table is identical however the
	// tasks were scheduled.
	base *PlanTable
	// order is the append-only log of locally-created entries in
	// first-write order — the deterministic replay schedule Absorb follows.
	order []*entry
}

// NewPlanTable returns an empty plan table.
func NewPlanTable() *PlanTable {
	return &PlanTable{
		entries:  map[entryKey]*entry{},
		byTables: map[string][]*entry{},
	}
}

// NewOverlay returns an empty overlay table over base. The overlay inherits
// base's pruning mode but reports into its own Obs sink (set by the caller)
// and its own counters; Absorb folds both back.
func NewOverlay(base *PlanTable) *PlanTable {
	return &PlanTable{
		entries:       map[entryKey]*entry{},
		byTables:      map[string][]*entry{},
		base:          base,
		PruneDisabled: base.PruneDisabled,
	}
}

// find returns the verified entry for (tk, ph, preds) in this table alone
// (no base fall-through), or nil.
func (pt *PlanTable) find(tk string, ph uint64, preds expr.PredSet) *entry {
	for e := pt.entries[entryKey{tk: tk, ph: ph}]; e != nil; e = e.next {
		if e.preds.Equal(preds) {
			return e
		}
	}
	return nil
}

// ensure returns the entry for (tables, preds), creating it on first write.
func (pt *PlanTable) ensure(tables expr.TableSet, ph uint64, preds expr.PredSet) (*entry, bool) {
	tk := tables.Key()
	if e := pt.find(tk, ph, preds); e != nil {
		return e, false
	}
	e := &entry{tables: tables, preds: preds, pk: preds.Key()}
	k := entryKey{tk: tk, ph: ph}
	e.next = pt.entries[k]
	pt.entries[k] = e
	pt.byTables[tk] = append(pt.byTables[tk], e)
	return e, true
}

// Lookup returns the retained plans for exactly this table set and predicate
// set, or nil. The probe builds no strings: the table-set key is cached and
// the predicate set hashes by its cached per-predicate keys. On an overlay,
// base plans come first and local plans after — the same order a serial run
// would have accumulated them in, so cheapest-of tie-breaks stay
// deterministic.
func (pt *PlanTable) Lookup(tables expr.TableSet, preds expr.PredSet) []*plan.Node {
	tk := tables.Key()
	ph := preds.Hash64()
	var local []*plan.Node
	if e := pt.find(tk, ph, preds); e != nil {
		local = e.plans
	}
	if pt.base == nil {
		return local
	}
	var basePlans []*plan.Node
	if e := pt.base.find(tk, ph, preds); e != nil {
		basePlans = e.plans
	}
	if len(basePlans) == 0 {
		return local
	}
	if len(local) == 0 {
		return basePlans
	}
	out := make([]*plan.Node, 0, len(basePlans)+len(local))
	out = append(out, basePlans...)
	return append(out, local...)
}

// Insert adds plans to the (tables, preds) entry, pruning dominated ones,
// and returns the retained entry (on an overlay: the combined base + local
// view, matching what a serial run's entry would hold).
func (pt *PlanTable) Insert(tables expr.TableSet, preds expr.PredSet, plans []*plan.Node) []*plan.Node {
	var t0 time.Time
	profiled := pt.Obs.ProfEnabled()
	if profiled {
		t0 = time.Now()
	}
	ph := preds.Hash64()
	e, created := pt.ensure(tables, ph, preds)
	if created && pt.base != nil {
		pt.order = append(pt.order, e)
	}
	var baseEntry *entry
	if pt.base != nil {
		baseEntry = pt.base.find(tables.Key(), ph, preds)
	}
	for _, p := range plans {
		pt.Inserted++
		if pt.Obs.Enabled() {
			pt.Obs.Emit(obs.Event{Name: obs.EvPlanOffer, A1: tables.Key(),
				A2: p.Fingerprint(), A3: offerDetail(p),
				F1: p.Props.Cost.Total, F2: p.Props.Card})
		}
		pt.addPruned(e, baseEntry, p)
	}
	if pt.Obs.Enabled() {
		pt.Obs.Emit(obs.Event{Name: obs.EvPlanInsert, A1: tables.Key(), A2: e.pk,
			N1: int64(len(plans)), N2: int64(len(e.plans))})
	}
	if profiled {
		// One plantable_offer batch per Insert; the count is plans offered,
		// the duration covers their dominance scans.
		pt.Obs.ProfActivity(obs.ActOffer, time.Since(t0), int64(len(plans)))
	}
	if pt.base == nil {
		return e.plans
	}
	return pt.Lookup(tables, preds)
}

func (pt *PlanTable) addPruned(e *entry, baseEntry *entry, p *plan.Node) {
	var basePlans []*plan.Node
	if baseEntry != nil {
		basePlans = baseEntry.plans
	}
	if pt.PruneDisabled {
		for _, q := range basePlans {
			if q == p || q.FP64() == p.FP64() {
				return
			}
		}
		for _, q := range e.plans {
			if q == p || q.FP64() == p.FP64() {
				return
			}
		}
		e.plans = append(e.plans, p)
		return
	}
	// Base plans are scanned first (they were retained first, exactly as in
	// a serial run) and may reject the incoming plan, but are never evicted
	// here: an overlay must not mutate its shared, frozen base. A base plan
	// the incoming plan dominates is evicted later, when Absorb replays
	// this write into the base on the barrier goroutine.
	for _, q := range basePlans {
		if q == p {
			return
		}
		if plan.Dominates(q.Props, p.Props) {
			pt.Pruned++
			pt.emitPrune(e.tables.Key(), p, q, 0)
			return
		}
	}
	for _, q := range e.plans {
		if q == p {
			return
		}
		if plan.Dominates(q.Props, p.Props) {
			pt.Pruned++
			pt.emitPrune(e.tables.Key(), p, q, 0) // incoming p rejected, dominated by existing q
			return
		}
	}
	out := e.plans[:0]
	for _, q := range e.plans {
		if plan.Dominates(p.Props, q.Props) {
			pt.Pruned++
			pt.emitPrune(e.tables.Key(), q, p, 1) // existing q evicted by incoming p
			continue
		}
		out = append(out, q)
	}
	e.plans = append(out, p)
}

// Absorb replays an overlay's locally-retained plans into pt, walking the
// overlay's append-only entry log in first-write order, and folds its churn
// counters. Replay goes through the normal Insert path on the calling
// goroutine, so decisions an overlay had to defer — a task's plan evicting a
// base plan it dominates, or two tasks' equivalent veneers for a shared
// subset pruning one another — are made here, with the usual
// offer/insert/prune events going to pt.Obs. Absorbing a rank's overlays in
// ascending subset order therefore yields a table whose contents are
// independent of how the tasks were scheduled. Identity memos of every plan
// in a touched entry are populated before returning, so subsequent
// concurrent readers of pt never race on the lazy memoization.
func (pt *PlanTable) Absorb(o *PlanTable) {
	var t0 time.Time
	profiled := pt.Obs.ProfEnabled()
	if profiled {
		t0 = time.Now()
	}
	full := pt.Obs.Enabled() || pt.PruneDisabled
	for _, oe := range o.order {
		if len(oe.plans) == 0 {
			continue
		}
		pt.Insert(oe.tables, oe.preds, oe.plans)
		if e := pt.find(oe.tables.Key(), oe.preds.Hash64(), oe.preds); e != nil {
			memoizePlans(e.plans, full)
		}
	}
	pt.Inserted += o.Inserted
	pt.Pruned += o.Pruned
	if profiled {
		// The absorb meter overlaps plantable_offer: replaying an overlay
		// goes through Insert, which times its own offers too.
		pt.Obs.ProfActivity(obs.ActAbsorb, time.Since(t0), 1)
	}
}

// memoizePlans populates the lazy identity memos workers may read
// concurrently: the 64-bit structural hash always (the rule engine's
// duplicate check), and the full Key/Fingerprint strings only when something
// will render them from a worker (observability events, or the
// pruning-disabled duplicate scan's diagnostics).
func memoizePlans(plans []*plan.Node, full bool) {
	for _, p := range plans {
		if full {
			p.Fingerprint()
		} else {
			p.FP64()
		}
	}
}

// MemoizeIdentities precomputes every retained plan's identity memos. The
// optimizer calls it before fanning readers of the table out to worker
// goroutines: plan.Node memoizes lazily, which is a write, and must happen
// while the table is still single-threaded.
func (pt *PlanTable) MemoizeIdentities() {
	full := pt.Obs.Enabled() || pt.PruneDisabled
	pt.ForEach(func(_, _ string, p *plan.Node) {
		if full {
			p.Fingerprint()
		} else {
			p.FP64()
		}
	})
}

// emitPrune records one dominance decision with the identity and cost of
// both the victim and the dominator — the forensic record provenance.WhyNot
// answers from. direction is 0 when the incoming plan was rejected, 1 when
// an existing plan was evicted.
func (pt *PlanTable) emitPrune(tk string, victim, dominator *plan.Node, direction int64) {
	if !pt.Obs.Enabled() {
		return
	}
	pt.Obs.Emit(obs.Event{Name: obs.EvPlanPrune, A1: tk, N1: direction,
		A2: victim.Fingerprint(), A3: dominator.Fingerprint(),
		F1: victim.Props.Cost.Total, F2: dominator.Props.Cost.Total})
}

// offerDetail renders the origin and operator of an offered plan for the
// plantable.offer event ("JMeth#2 JOIN(MG)").
func offerDetail(p *plan.Node) string {
	origin := p.Origin
	if origin == "" {
		origin = "?"
	}
	head := string(p.Op)
	if p.Flavor != "" {
		head += "(" + p.Flavor + ")"
	}
	return origin + " " + head
}

// ForEach visits every retained plan, keyed by table-set and predicate key,
// in unspecified order — provenance walks the final population through it.
// On an overlay, base plans are visited too.
func (pt *PlanTable) ForEach(fn func(tablesKey, predsKey string, p *plan.Node)) {
	if pt.base != nil {
		pt.base.ForEach(fn)
	}
	for tk, es := range pt.byTables {
		for _, e := range es {
			for _, p := range e.plans {
				fn(tk, e.pk, p)
			}
		}
	}
}

// HasEntry reports whether any plan is stored for the table set, without
// materializing the combined entry — the enumeration's joinability probe.
func (pt *PlanTable) HasEntry(tables expr.TableSet) bool {
	if pt.base != nil && pt.base.HasEntry(tables) {
		return true
	}
	for _, e := range pt.byTables[tables.Key()] {
		if len(e.plans) > 0 {
			return true
		}
	}
	return false
}

// Entry returns every plan stored for the table set across all predicate
// keys (on an overlay: base entries first, then local ones).
func (pt *PlanTable) Entry(tables expr.TableSet) []*plan.Node {
	var out []*plan.Node
	if pt.base != nil {
		out = pt.base.Entry(tables)
	}
	for _, e := range pt.byTables[tables.Key()] {
		out = append(out, e.plans...)
	}
	return out
}

// Sites returns the distinct sites at which plans for the table set exist,
// sorted — the siteDiffers condition's probe.
func (pt *PlanTable) Sites(tables expr.TableSet) []string {
	seen := map[string]bool{}
	for _, p := range pt.Entry(tables) {
		seen[p.Props.Site] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Best returns the cheapest plan across every predicate key of the table
// set, or nil.
func (pt *PlanTable) Best(tables expr.TableSet) *plan.Node {
	var best *plan.Node
	for _, p := range pt.Entry(tables) {
		if best == nil || p.Props.Cost.Total < best.Props.Cost.Total {
			best = p
		}
	}
	return best
}

// Size returns the total number of retained plans (including base plans on
// an overlay).
func (pt *PlanTable) Size() int {
	n := 0
	if pt.base != nil {
		n = pt.base.Size()
	}
	for _, es := range pt.byTables {
		for _, e := range es {
			n += len(e.plans)
		}
	}
	return n
}

// CheapestOf returns the minimum-cost plan of a slice, or nil.
func CheapestOf(plans []*plan.Node) *plan.Node {
	var best *plan.Node
	for _, p := range plans {
		if best == nil || p.Props.Cost.Total < best.Props.Cost.Total {
			best = p
		}
	}
	return best
}
