// Package glue implements the paper's Glue mechanism (Section 3.2): given a
// required set of properties for a stream, it (1) finds or creates plans for
// the required relational properties — referencing the top-most access STAR
// when none exist, (2) injects "veneer" Glue operators (SHIP, SORT, STORE,
// BUILDINDEX, FILTER) to make plans satisfy the required physical
// properties, and (3) returns the cheapest satisfying plan (or, optionally,
// all of them). Figure 3 of the paper is exactly this module's behaviour.
//
// The package also owns the plan table: the data structure, hashed on the
// tables and predicates (Section 4.4), that makes "do plans exist for these
// relational properties?" a dictionary lookup.
package glue

import (
	"sort"
	"strings"

	"stars/internal/expr"
	"stars/internal/obs"
	"stars/internal/plan"
)

// PlanTable stores every Set of Alternative Plans produced so far, keyed by
// (TABLES, PREDS) — the relational properties of Figure 2. Within one entry
// only non-dominated plans are retained: a plan survives unless some other
// plan is at least as cheap and offers every physical property it offers.
type PlanTable struct {
	entries map[string]map[string][]*plan.Node
	// Inserted counts insertion attempts; Pruned counts plans rejected or
	// evicted by dominance. PruneDisabled turns dominance off (ablation).
	Inserted      int64
	Pruned        int64
	PruneDisabled bool
	// Obs, when enabled, receives plantable.insert / plantable.prune
	// events.
	Obs *obs.Sink
}

// NewPlanTable returns an empty plan table.
func NewPlanTable() *PlanTable {
	return &PlanTable{entries: map[string]map[string][]*plan.Node{}}
}

func tablesKey(t expr.TableSet) string { return strings.Join(t.Slice(), ",") }

// Lookup returns the retained plans for exactly this table set and predicate
// set (by canonical key), or nil.
func (pt *PlanTable) Lookup(tables expr.TableSet, predsKey string) []*plan.Node {
	byPreds := pt.entries[tablesKey(tables)]
	if byPreds == nil {
		return nil
	}
	return byPreds[predsKey]
}

// Insert adds plans to the (tables, predsKey) entry, pruning dominated ones,
// and returns the retained entry.
func (pt *PlanTable) Insert(tables expr.TableSet, predsKey string, plans []*plan.Node) []*plan.Node {
	tk := tablesKey(tables)
	byPreds := pt.entries[tk]
	if byPreds == nil {
		byPreds = map[string][]*plan.Node{}
		pt.entries[tk] = byPreds
	}
	cur := byPreds[predsKey]
	for _, p := range plans {
		pt.Inserted++
		if pt.Obs.Enabled() {
			pt.Obs.Emit(obs.Event{Name: obs.EvPlanOffer, A1: tk,
				A2: p.Fingerprint(), A3: offerDetail(p),
				F1: p.Props.Cost.Total, F2: p.Props.Card})
		}
		cur = pt.addPruned(tk, cur, p)
	}
	byPreds[predsKey] = cur
	if pt.Obs.Enabled() {
		pt.Obs.Emit(obs.Event{Name: obs.EvPlanInsert, A1: tk, A2: predsKey,
			N1: int64(len(plans)), N2: int64(len(cur))})
	}
	return cur
}

func (pt *PlanTable) addPruned(tk string, cur []*plan.Node, p *plan.Node) []*plan.Node {
	if pt.PruneDisabled {
		for _, q := range cur {
			if q == p || q.Key() == p.Key() {
				return cur
			}
		}
		return append(cur, p)
	}
	for _, q := range cur {
		if q == p {
			return cur
		}
		if plan.Dominates(q.Props, p.Props) {
			pt.Pruned++
			pt.emitPrune(tk, p, q, 0) // incoming p rejected, dominated by existing q
			return cur
		}
	}
	out := cur[:0]
	for _, q := range cur {
		if plan.Dominates(p.Props, q.Props) {
			pt.Pruned++
			pt.emitPrune(tk, q, p, 1) // existing q evicted by incoming p
			continue
		}
		out = append(out, q)
	}
	return append(out, p)
}

// emitPrune records one dominance decision with the identity and cost of
// both the victim and the dominator — the forensic record provenance.WhyNot
// answers from. direction is 0 when the incoming plan was rejected, 1 when
// an existing plan was evicted.
func (pt *PlanTable) emitPrune(tk string, victim, dominator *plan.Node, direction int64) {
	if !pt.Obs.Enabled() {
		return
	}
	pt.Obs.Emit(obs.Event{Name: obs.EvPlanPrune, A1: tk, N1: direction,
		A2: victim.Fingerprint(), A3: dominator.Fingerprint(),
		F1: victim.Props.Cost.Total, F2: dominator.Props.Cost.Total})
}

// offerDetail renders the origin and operator of an offered plan for the
// plantable.offer event ("JMeth#2 JOIN(MG)").
func offerDetail(p *plan.Node) string {
	origin := p.Origin
	if origin == "" {
		origin = "?"
	}
	head := string(p.Op)
	if p.Flavor != "" {
		head += "(" + p.Flavor + ")"
	}
	return origin + " " + head
}

// ForEach visits every retained plan, keyed by table-set and predicate key,
// in unspecified order — provenance walks the final population through it.
func (pt *PlanTable) ForEach(fn func(tablesKey, predsKey string, p *plan.Node)) {
	for tk, byPreds := range pt.entries {
		for pk, plans := range byPreds {
			for _, p := range plans {
				fn(tk, pk, p)
			}
		}
	}
}

// Entry returns every plan stored for the table set across all predicate
// keys.
func (pt *PlanTable) Entry(tables expr.TableSet) []*plan.Node {
	var out []*plan.Node
	for _, plans := range pt.entries[tablesKey(tables)] {
		out = append(out, plans...)
	}
	return out
}

// Sites returns the distinct sites at which plans for the table set exist,
// sorted — the siteDiffers condition's probe.
func (pt *PlanTable) Sites(tables expr.TableSet) []string {
	seen := map[string]bool{}
	for _, p := range pt.Entry(tables) {
		seen[p.Props.Site] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Best returns the cheapest plan across every predicate key of the table
// set, or nil.
func (pt *PlanTable) Best(tables expr.TableSet) *plan.Node {
	var best *plan.Node
	for _, p := range pt.Entry(tables) {
		if best == nil || p.Props.Cost.Total < best.Props.Cost.Total {
			best = p
		}
	}
	return best
}

// Size returns the total number of retained plans.
func (pt *PlanTable) Size() int {
	n := 0
	for _, byPreds := range pt.entries {
		for _, plans := range byPreds {
			n += len(plans)
		}
	}
	return n
}

// CheapestOf returns the minimum-cost plan of a slice, or nil.
func CheapestOf(plans []*plan.Node) *plan.Node {
	var best *plan.Node
	for _, p := range plans {
		if best == nil || p.Props.Cost.Total < best.Props.Cost.Total {
			best = p
		}
	}
	return best
}
