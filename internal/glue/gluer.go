package glue

import (
	"fmt"

	"stars/internal/expr"
	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/star"
)

// Stats counts Glue activity.
type Stats struct {
	// Calls counts Glue references.
	Calls int64
	// Hits counts references satisfied from the plan table.
	Hits int64
	// Misses counts references that re-referenced access STARs or
	// retrofitted predicates.
	Misses int64
	// Veneers counts Glue operators injected.
	Veneers int64
}

// Add accumulates another run's counters (mirrors star.Stats.Add).
func (s *Stats) Add(o Stats) {
	s.Calls += o.Calls
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Veneers += o.Veneers
}

// Gluer is the Glue mechanism wired to a STAR engine, a query, and a plan
// table.
type Gluer struct {
	// Engine evaluates access STARs on plan-table misses and prices
	// veneer nodes.
	Engine *star.Engine
	// Graph is the query being optimized.
	Graph *query.Graph
	// Table is the plan table.
	Table *PlanTable
	// KeepAll makes Glue return every satisfying plan instead of only the
	// cheapest (the paper's optional mode; an ablation benchmark flips
	// it).
	KeepAll bool
	// Stats accumulates counters.
	Stats Stats
}

// AccessRootRule names the STAR Glue references when no plans exist for a
// single table's relational properties.
const AccessRootRule = "AccessRoot"

// Glue implements star.GlueFn. See the package comment for the three steps.
func (g *Gluer) Glue(req *star.GlueRequest) (result []*plan.Node, err error) {
	g.Stats.Calls++
	var sp obs.Span
	if g.Engine.Obs.Enabled() {
		sp = g.Engine.Obs.StartSpan(obs.EvGlue, req.Tables.Key(), req.Req.String(), 0)
		defer func() { sp.End(int64(len(result))) }()
	}
	base := g.Graph.EligibleWithin(req.Tables)
	// Pushed predicates split into static ones (columns within the table
	// set; applicable once) and bound ones (columns referencing the outer
	// side; re-evaluated per probe via sideways information passing).
	// Bound predicates must never sink below a materialization: a temp's
	// contents cannot depend on the current outer tuple.
	static := req.Push.Within(req.Tables)
	bound := req.Push.Minus(static)
	materialize := req.Req.Temp || len(req.Req.PathCols) > 0

	lookup := base.Union(static)
	if !materialize {
		lookup = lookup.Union(bound)
	}
	cands, err := g.ensurePlans(req.Tables, lookup)
	if err != nil {
		return nil, err
	}

	full := base.Union(static).Union(bound)
	var out []*plan.Node
	for _, cand := range cands {
		v, err := g.veneer(cand, req.Req, full)
		if err != nil {
			return nil, err
		}
		if v != nil {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("glue: no plan for {%s} satisfies %s", req.Tables.Key(), req.Req)
	}
	// Newly veneered plans join the table so later references find them
	// (Figure 3's third plan came from an earlier Glue reference).
	out = g.Table.Insert(req.Tables, full, out)

	var satisfying []*plan.Node
	for _, p := range out {
		if req.Req.SatisfiedBy(p.Props) {
			satisfying = append(satisfying, p)
		}
	}
	if len(satisfying) == 0 {
		return nil, fmt.Errorf("glue: veneering failed to satisfy %s for {%s}", req.Req, req.Tables.Key())
	}
	if g.KeepAll || req.All {
		return satisfying, nil
	}
	return []*plan.Node{CheapestOf(satisfying)}, nil
}

// ensurePlans returns plans for (tables, preds), creating them on a miss:
// single tables re-reference the top-most access STAR with the full
// predicate set (so index plans can exploit pushed join predicates rather
// than retrofitting a FILTER — Section 4.4); composites retrofit the
// missing predicates onto the enumerated entry.
func (g *Gluer) ensurePlans(tables expr.TableSet, preds expr.PredSet) ([]*plan.Node, error) {
	if plans := g.Table.Lookup(tables, preds); len(plans) > 0 {
		g.Stats.Hits++
		if g.Engine.Obs.Enabled() {
			g.Engine.Obs.Emit(obs.Event{Name: obs.EvGlueHit, A1: tables.Key(), N1: int64(len(plans))})
		}
		return plans, nil
	}
	g.Stats.Misses++
	if g.Engine.Obs.Enabled() {
		g.Engine.Obs.Emit(obs.Event{Name: obs.EvGlueMiss, A1: tables.Key()})
	}
	names := tables.Slice()
	if len(names) == 1 {
		q := names[0]
		cols := g.Engine.NeededCols(q)
		sap, err := g.Engine.EvalRule(AccessRootRule, []star.Value{
			star.StreamValue(tables),
			star.ColsValue(cols),
			star.PredsValue(preds),
		})
		if err != nil {
			return nil, fmt.Errorf("glue: access plans for %s: %w", q, err)
		}
		if len(sap) == 0 {
			return nil, fmt.Errorf("glue: no access plans for %s", q)
		}
		return g.Table.Insert(tables, preds, sap), nil
	}
	// Composite: the enumeration inserted plans under the eligible
	// predicate set; add the missing predicates as a FILTER veneer.
	base := g.Graph.EligibleWithin(tables)
	cands := g.Table.Lookup(tables, base)
	if len(cands) == 0 {
		return nil, fmt.Errorf("glue: no plans exist for composite {%s} (enumeration order violated?)", tables.Key())
	}
	missing := preds.Minus(base)
	var out []*plan.Node
	for _, c := range cands {
		f, err := g.addFilter(c, missing)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return g.Table.Insert(tables, preds, out), nil
}

// veneer augments one plan with Glue operators until it satisfies the
// requirements, applying any still-missing predicates of full above every
// materialization. It returns nil when the plan cannot be patched (which
// simply removes it from the candidate set).
func (g *Gluer) veneer(p *plan.Node, req plan.Reqd, full expr.PredSet) (*plan.Node, error) {
	cur := p
	// 1. Move to the required site (shipping first puts any temp at the
	// destination, as condition C1 of Section 4.3 intends).
	if req.Site != nil && cur.Props.Site != *req.Site {
		var err error
		cur, err = g.addVeneer(g.arenaNode(plan.Node{Op: plan.OpShip, Site: *req.Site, Inputs: []*plan.Node{cur}}))
		if err != nil {
			return nil, err
		}
	}
	// 2. Achieve the required order (before STORE, so the temp inherits
	// it).
	if len(req.Order) > 0 && !plan.OrderSatisfies(cur.Props.Order, req.Order) {
		var err error
		cur, err = g.addVeneer(g.arenaNode(plan.Node{Op: plan.OpSort, SortCols: req.Order, Inputs: []*plan.Node{cur}}))
		if err != nil {
			return nil, err
		}
	}
	// 3. Materialize when required.
	if (req.Temp || len(req.PathCols) > 0) && !cur.Props.Temp {
		var err error
		cur, err = g.addVeneer(g.arenaNode(plan.Node{Op: plan.OpStore, Table: g.Engine.NextTempName(), Inputs: []*plan.Node{cur}}))
		if err != nil {
			return nil, err
		}
	}
	// 4. Create the required index and probe it with the per-probe
	// predicates (Section 4.5.3).
	if len(req.PathCols) > 0 {
		var err error
		cur, err = g.dynamicIndex(cur, req.PathCols, full)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			return nil, nil
		}
	}
	// 5. Any predicates of the target set the plan still has not applied
	// go above everything as a per-probe FILTER.
	missing := full.Minus(cur.Props.Preds())
	if !missing.Empty() {
		var err error
		cur, err = g.addFilter(cur, missing)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// dynamicIndex ensures an index on ixCols exists on the materialized stream
// and replaces the stream with an index probe applying the matching pushed
// predicates.
func (g *Gluer) dynamicIndex(cur *plan.Node, ixCols []expr.ColID, full expr.PredSet) (*plan.Node, error) {
	if cur.Props.PathOn(ixCols) == nil {
		var err error
		cur, err = g.addVeneer(g.arenaNode(plan.Node{
			Op: plan.OpBuildIndex, Path: g.Engine.NextIndexName(),
			SortCols: ixCols, Inputs: []*plan.Node{cur},
		}))
		if err != nil {
			return nil, err
		}
	}
	path := cur.Props.PathOn(ixCols)
	missing := full.Minus(cur.Props.Preds())
	probePreds := expr.MatchIndexPrefix(missing, path.Cols)
	probe := g.arenaNode(plan.Node{
		Op: plan.OpAccess, Flavor: plan.FlavorIndex,
		Table: cur.Props.TempName, Path: path.Name,
		Cols:  cur.Props.Cols(), // interned and never mutated; sharing is safe
		Preds: probePreds, Inputs: []*plan.Node{cur},
	})
	return g.addVeneer(probe)
}

func (g *Gluer) addFilter(cur *plan.Node, preds expr.PredSet) (*plan.Node, error) {
	if preds.Empty() {
		return cur, nil
	}
	return g.addVeneer(g.arenaNode(plan.Node{Op: plan.OpFilter, Preds: preds, Inputs: []*plan.Node{cur}}))
}

// arenaNode allocates a veneer node from the optimization's arena.
func (g *Gluer) arenaNode(n plan.Node) *plan.Node {
	return g.Engine.Cost.Arena.NewNode(n)
}

func (g *Gluer) addVeneer(n *plan.Node) (*plan.Node, error) {
	if err := g.Engine.Cost.Price(n); err != nil {
		return nil, fmt.Errorf("glue: pricing %s veneer: %w", n.Op, err)
	}
	n.Origin = "Glue"
	g.Stats.Veneers++
	if g.Engine.Obs.Enabled() {
		e := obs.Event{Name: obs.EvVeneer, A1: string(n.Op), A2: n.Fingerprint(), N1: 1,
			F1: n.Props.Cost.Total}
		if in := n.Outer(); in != nil {
			e.A3 = in.Fingerprint()
		}
		g.Engine.Obs.Emit(e)
	}
	return n, nil
}

// PlanSites implements the engine's PlanSites probe: the sites of existing
// plans, falling back to catalog placement for single tables.
func (g *Gluer) PlanSites(tables expr.TableSet) []string {
	if sites := g.Table.Sites(tables); len(sites) > 0 {
		return sites
	}
	names := tables.Slice()
	if len(names) == 1 {
		if q := g.Graph.Quant(names[0]); q != nil {
			return []string{g.Engine.Cost.Cat.SiteOf(q.Table)}
		}
	}
	return nil
}
