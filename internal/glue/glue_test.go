package glue

import (
	"strings"
	"testing"

	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/star"
)

// fixture wires a catalog, query graph, engine, and gluer for DEPT/EMP with
// DEPT remote.
func fixture(t *testing.T) (*Gluer, *star.Engine, *query.Graph) {
	t.Helper()
	cat := catalog.New()
	cat.Sites = []string{"LA", "NY"}
	cat.QuerySite = "LA"
	cat.AddTable(&catalog.Table{
		Name: "DEPT", Site: "NY",
		Cols: []*catalog.Column{
			{Name: "DNO", Type: datum.KindInt, NDV: 100},
			{Name: "MGR", Type: datum.KindString, NDV: 90},
		},
		Card: 5000,
		Paths: []*catalog.AccessPath{
			{Name: "DEPTDNO", Table: "DEPT", Cols: []string{"DNO"}},
		},
	})
	cat.AddTable(&catalog.Table{
		Name: "EMP", Site: "LA",
		Cols: []*catalog.Column{
			{Name: "DNO", Type: datum.KindInt, NDV: 100},
			{Name: "NAME", Type: datum.KindString, NDV: 9000},
		},
		Card: 10000,
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "DEPT", Table: "DEPT"}, {Name: "EMP", Table: "EMP"}},
		Preds: expr.NewPredSet(
			&expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "DNO"), R: expr.C("EMP", "DNO")},
		),
		Select: []expr.ColID{{Table: "DEPT", Col: "MGR"}, {Table: "EMP", Col: "NAME"}},
	}
	env := cost.NewEnv(cat, cost.DefaultWeights)
	for _, q := range g.Quants {
		env.BindQuantifier(q.Name, q.Table)
	}
	en := star.NewEngine(star.DefaultRules(), env)
	en.QueryTables = g.QuantNames()
	en.NeededCols = func(q string) []expr.ColID { return g.NeededCols(cat, q) }
	table := NewPlanTable()
	gl := &Gluer{Engine: en, Graph: g, Table: table}
	en.Glue = gl.Glue
	en.PlanSites = gl.PlanSites
	return gl, en, g
}

func deptSet() expr.TableSet { return expr.NewTableSet("DEPT") }

// Distinct predicate sets standing in for plan-table keys in unit tests.
var (
	predsK     = expr.NewPredSet(&expr.Cmp{Op: expr.EQ, L: expr.C("T", "A"), R: expr.C("T", "B")})
	predsOther = expr.NewPredSet(&expr.Cmp{Op: expr.GT, L: expr.C("T", "A"), R: expr.C("T", "B")})
	predsP     = expr.NewPredSet(&expr.Cmp{Op: expr.LT, L: expr.C("T", "A"), R: expr.C("T", "B")})
)

func TestPlanTableInsertLookupAndPruning(t *testing.T) {
	pt := NewPlanTable()
	ts := deptSet()
	cheap := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	pricey := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorBTreeStore, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 50}}}
	ordered := &plan.Node{Op: plan.OpSort, SortCols: []expr.ColID{{Table: "DEPT", Col: "DNO"}},
		Inputs: []*plan.Node{cheap},
		Props: &plan.Props{Cost: plan.Cost{Total: 80},
			Order: []expr.ColID{{Table: "DEPT", Col: "DNO"}}}}

	got := pt.Insert(ts, predsK, []*plan.Node{pricey, cheap, ordered})
	if len(got) != 2 {
		t.Fatalf("retained = %d, want 2 (pricey dominated; ordered shielded)", len(got))
	}
	if pt.Pruned != 1 {
		t.Errorf("pruned = %d", pt.Pruned)
	}
	if len(pt.Lookup(ts, predsK)) != 2 || pt.Lookup(ts, predsOther) != nil {
		t.Error("lookup keys")
	}
	if pt.Best(ts) == nil || pt.Best(ts).Props.Cost.Total != 5 {
		t.Error("best")
	}
	if pt.Size() != 2 {
		t.Error("size")
	}
	// Re-inserting an identical plan is a no-op.
	pt.Insert(ts, predsK, []*plan.Node{cheap})
	if pt.Size() != 2 {
		t.Error("idempotent insert")
	}
}

// TestPlanTablePruneForensics checks the enriched event stream: every offer
// carries the plan's fingerprint and cost, and every prune decision names
// victim and dominator with costs and the correct direction (0 = incoming
// rejected on arrival, 1 = existing evicted by a later arrival).
func TestPlanTablePruneForensics(t *testing.T) {
	pt := NewPlanTable()
	pt.Obs = obs.NewSink()
	ts := deptSet()
	pricey := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorBTreeStore, Table: "DEPT",
		Origin: "TableAccess#2", Props: &plan.Props{Cost: plan.Cost{Total: 50}}}
	cheap := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Origin: "TableAccess#1", Props: &plan.Props{Cost: plan.Cost{Total: 5}}}

	// pricey arrives first and is later evicted by cheap.
	pt.Insert(ts, predsK, []*plan.Node{pricey})
	pt.Insert(ts, predsK, []*plan.Node{cheap})

	var offers, prunes []obs.Event
	for _, e := range pt.Obs.Events() {
		switch e.Name {
		case obs.EvPlanOffer:
			offers = append(offers, e)
		case obs.EvPlanPrune:
			prunes = append(prunes, e)
		}
	}
	if len(offers) != 2 {
		t.Fatalf("offers = %d, want 2", len(offers))
	}
	for _, e := range offers {
		if e.A1 != "DEPT" || e.A2 == "" || e.F1 == 0 {
			t.Errorf("offer lacks key/fingerprint/cost: %+v", e)
		}
	}
	if offers[0].A3 != "TableAccess#2 ACCESS(btree)" {
		t.Errorf("offer detail = %q", offers[0].A3)
	}
	if len(prunes) != 1 {
		t.Fatalf("prunes = %d, want 1", len(prunes))
	}
	e := prunes[0]
	if e.N1 != 1 {
		t.Errorf("direction = %d, want 1 (existing plan evicted)", e.N1)
	}
	if e.A2 != pricey.Fingerprint() || e.A3 != cheap.Fingerprint() {
		t.Errorf("victim/dominator = %q/%q, want %q/%q", e.A2, e.A3,
			pricey.Fingerprint(), cheap.Fingerprint())
	}
	if e.F1 != 50 || e.F2 != 5 {
		t.Errorf("victim/dominator costs = %.1f/%.1f, want 50/5", e.F1, e.F2)
	}

	// The reverse order: the incoming plan is rejected on arrival.
	pt2 := NewPlanTable()
	pt2.Obs = obs.NewSink()
	cheap2 := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	pricey2 := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorBTreeStore, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 50}}}
	pt2.Insert(ts, predsK, []*plan.Node{cheap2})
	pt2.Insert(ts, predsK, []*plan.Node{pricey2})
	for _, e := range pt2.Obs.Events() {
		if e.Name != obs.EvPlanPrune {
			continue
		}
		if e.N1 != 0 {
			t.Errorf("direction = %d, want 0 (incoming rejected)", e.N1)
		}
		if e.A2 != pricey2.Fingerprint() || e.A3 != cheap2.Fingerprint() {
			t.Errorf("victim/dominator = %q/%q", e.A2, e.A3)
		}
	}
}

func TestPlanTablePruneDisabled(t *testing.T) {
	pt := NewPlanTable()
	pt.PruneDisabled = true
	ts := deptSet()
	a := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "A",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	b := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "B",
		Props: &plan.Props{Cost: plan.Cost{Total: 50}}}
	pt.Insert(ts, predsK, []*plan.Node{a, b, a}) // duplicate a
	if pt.Size() != 2 {
		t.Fatalf("size = %d (dedup by key, no dominance)", pt.Size())
	}
}

func TestGlueMissReferencesAccessRoot(t *testing.T) {
	gl, en, _ := fixture(t)
	plans, err := gl.Glue(&star.GlueRequest{Tables: deptSet()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("cheapest-only returns 1, got %d", len(plans))
	}
	if gl.Stats.Misses != 1 || en.Stats.RuleRefs == 0 {
		t.Error("the miss must have referenced AccessRoot")
	}
	// Second reference hits the table.
	if _, err := gl.Glue(&star.GlueRequest{Tables: deptSet()}); err != nil {
		t.Fatal(err)
	}
	if gl.Stats.Hits == 0 {
		t.Error("second reference must hit")
	}
}

func TestGlueSatisfiesOrderAndSite(t *testing.T) {
	gl, _, _ := fixture(t)
	la := "LA"
	req := plan.Reqd{
		Site:  &la,
		Order: []expr.ColID{{Table: "DEPT", Col: "DNO"}},
	}
	plans, err := gl.Glue(&star.GlueRequest{Tables: deptSet(), Req: req})
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	if !req.SatisfiedBy(p.Props) {
		t.Fatalf("requirements unmet:\n%s", plan.Explain(p))
	}
	if gl.Stats.Veneers == 0 {
		t.Error("veneers must have been injected")
	}
}

func TestGlueBoundPredsStayAboveStore(t *testing.T) {
	gl, _, _ := fixture(t)
	// Push the (bound) join predicate while requiring a temp: the
	// predicate must appear above the STORE, never below it.
	jp := &expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "DNO"), R: expr.C("EMP", "DNO")}
	plans, err := gl.Glue(&star.GlueRequest{
		Tables: deptSet(),
		Push:   expr.NewPredSet(jp),
		Req:    plan.Reqd{Temp: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	// Find the STORE; everything beneath it must not reference EMP.
	var store *plan.Node
	p.Walk(func(n *plan.Node) {
		if n.Op == plan.OpStore && store == nil {
			store = n
		}
	})
	if store == nil {
		t.Fatalf("no STORE in temp-required plan:\n%s", plan.Explain(p))
	}
	store.Walk(func(n *plan.Node) {
		for _, pr := range n.Preds.Slice() {
			for _, c := range expr.Columns(pr) {
				if c.Table == "EMP" {
					t.Fatalf("bound predicate sank below STORE:\n%s", plan.Explain(p))
				}
			}
		}
	})
	// And the full plan must still apply it somewhere.
	if !p.Props.Preds().Contains(jp) {
		t.Fatalf("bound predicate not applied:\n%s", plan.Explain(p))
	}
}

func TestGlueDynamicIndexVeneer(t *testing.T) {
	gl, _, _ := fixture(t)
	jp := &expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "DNO"), R: expr.C("EMP", "DNO")}
	// Require an index on EMP.DNO (EMP has no catalog index): Glue must
	// STORE, BUILDINDEX, and probe.
	plans, err := gl.Glue(&star.GlueRequest{
		Tables: expr.NewTableSet("EMP"),
		Push:   expr.NewPredSet(jp),
		Req:    plan.Reqd{PathCols: []expr.ColID{{Table: "EMP", Col: "DNO"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	var ops []string
	for n := p; n != nil; {
		ops = append(ops, string(n.Op))
		if len(n.Inputs) == 0 {
			break
		}
		n = n.Inputs[0]
	}
	chain := strings.Join(ops, "<")
	if !strings.Contains(chain, "ACCESS<BUILDINDEX<STORE") {
		t.Fatalf("expected probe over dynamic index over temp, got %s:\n%s", chain, plan.Explain(p))
	}
	if p.Op != plan.OpAccess || p.Flavor != plan.FlavorIndex {
		t.Fatalf("top must be the index probe:\n%s", plan.Explain(p))
	}
	if p.Preds.Empty() {
		t.Error("the probe must carry the bound join predicate")
	}
}

func TestGlueAllReturnsEverySatisfying(t *testing.T) {
	gl, _, _ := fixture(t)
	plans, err := gl.Glue(&star.GlueRequest{Tables: deptSet(), All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Fatalf("All must return the alternatives, got %d", len(plans))
	}
}

func TestGlueCompositeRetrofitsFilter(t *testing.T) {
	gl, en, g := fixture(t)
	// Seed a composite entry by building the join through the engine.
	both := expr.NewTableSet("DEPT", "EMP")
	sap, err := en.EvalRule("JoinRoot", []star.Value{
		star.StreamValue(deptSet()),
		star.StreamValue(expr.NewTableSet("EMP")),
		star.PredsValue(g.Preds),
	})
	if err != nil {
		t.Fatal(err)
	}
	gl.Table.Insert(both, g.EligibleWithin(both), sap)
	// Pushing an extra static predicate onto the composite retrofits a
	// FILTER.
	extra := &expr.Cmp{Op: expr.EQ, L: expr.C("EMP", "NAME"), R: &expr.Const{Val: datum.NewString("x")}}
	plans, err := gl.Glue(&star.GlueRequest{Tables: both, Push: expr.NewPredSet(extra)})
	if err != nil {
		t.Fatal(err)
	}
	if !plans[0].Props.Preds().Contains(extra) {
		t.Fatalf("pushed predicate not applied:\n%s", plan.Explain(plans[0]))
	}
}

func TestGlueCompositeWithoutEntryFails(t *testing.T) {
	gl, _, _ := fixture(t)
	_, err := gl.Glue(&star.GlueRequest{Tables: expr.NewTableSet("DEPT", "EMP")})
	if err == nil || !strings.Contains(err.Error(), "no plans exist") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlanSitesFallsBackToCatalog(t *testing.T) {
	gl, _, _ := fixture(t)
	sites := gl.PlanSites(deptSet())
	if len(sites) != 1 || sites[0] != "NY" {
		t.Fatalf("sites = %v (catalog fallback)", sites)
	}
	// After plans exist, their sites win.
	if _, err := gl.Glue(&star.GlueRequest{Tables: deptSet()}); err != nil {
		t.Fatal(err)
	}
	sites = gl.PlanSites(deptSet())
	if len(sites) == 0 {
		t.Fatal("plan sites after population")
	}
}

func TestCheapestOf(t *testing.T) {
	if CheapestOf(nil) != nil {
		t.Error("empty slice")
	}
	a := &plan.Node{Props: &plan.Props{Cost: plan.Cost{Total: 2}}}
	b := &plan.Node{Props: &plan.Props{Cost: plan.Cost{Total: 1}}}
	if CheapestOf([]*plan.Node{a, b}) != b {
		t.Error("cheapest")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Calls: 1, Hits: 2, Misses: 3, Veneers: 4}
	a.Add(Stats{Calls: 10, Hits: 20, Misses: 30, Veneers: 40})
	if a != (Stats{Calls: 11, Hits: 22, Misses: 33, Veneers: 44}) {
		t.Errorf("Stats.Add = %+v", a)
	}
}

// TestOverlayIsolation pins the overlay contract the parallel enumeration
// relies on: reads fall through to the frozen base, writes stay local, base
// plans can reject (but never be evicted by) overlay offers, and Absorb
// replays the deferred decisions into the base.
func TestOverlayIsolation(t *testing.T) {
	base := NewPlanTable()
	ts := deptSet()
	cheap := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	base.Insert(ts, predsP, []*plan.Node{cheap})

	ov := NewOverlay(base)
	// Reads fall through.
	if got := ov.Lookup(ts, predsP); len(got) != 1 || got[0] != cheap {
		t.Fatalf("overlay lookup = %v", got)
	}
	// A dominated offer is rejected by the base plan without touching base.
	dominated := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorBTreeStore, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 50}}}
	out := ov.Insert(ts, predsP, []*plan.Node{dominated})
	if len(out) != 1 || out[0] != cheap {
		t.Fatalf("combined view after dominated offer = %v", out)
	}
	if ov.Pruned != 1 || base.Pruned != 0 {
		t.Fatalf("pruned: overlay %d base %d", ov.Pruned, base.Pruned)
	}
	// A dominating offer is retained locally; the dominated base plan
	// survives until Absorb (the base is frozen while tasks run).
	winner := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 1}}}
	out = ov.Insert(ts, predsP, []*plan.Node{winner})
	if len(out) != 2 {
		t.Fatalf("combined view after dominating offer = %d plans", len(out))
	}
	if got := base.Lookup(ts, predsP); len(got) != 1 || got[0] != cheap {
		t.Fatalf("base mutated while overlay live: %v", got)
	}
	// Absorb replays the overlay's writes: the winner evicts the base plan.
	base.Absorb(ov)
	if got := base.Lookup(ts, predsP); len(got) != 1 || got[0] != winner {
		t.Fatalf("base after absorb = %v", got)
	}
	// Counters fold: overlay offers (2, one rejected) plus the replayed
	// insert (1 offer, evicting cheap) on top of the base's original one.
	if base.Inserted != 1+2+1 || base.Pruned != 1+1 {
		t.Fatalf("counters after absorb: inserted %d pruned %d", base.Inserted, base.Pruned)
	}
	if base.Size() != 1 {
		t.Fatalf("base size = %d", base.Size())
	}
}

// TestOverlayPruneDisabled pins the ablation path: with pruning off, an
// overlay still dedupes identical plans against the frozen base by key.
func TestOverlayPruneDisabled(t *testing.T) {
	base := NewPlanTable()
	base.PruneDisabled = true
	ts := deptSet()
	a := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	base.Insert(ts, predsP, []*plan.Node{a})

	ov := NewOverlay(base)
	if !ov.PruneDisabled {
		t.Fatal("overlay must inherit PruneDisabled")
	}
	dup := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 5}}}
	worse := &plan.Node{Op: plan.OpAccess, Flavor: plan.FlavorBTreeStore, Table: "DEPT",
		Props: &plan.Props{Cost: plan.Cost{Total: 50}}}
	out := ov.Insert(ts, predsP, []*plan.Node{dup, worse})
	if len(out) != 2 {
		t.Fatalf("combined view = %d plans (dup must dedupe, worse must stay)", len(out))
	}
	base.Absorb(ov)
	if got := len(base.Lookup(ts, predsP)); got != 2 {
		t.Fatalf("base after absorb holds %d plans", got)
	}
}
