// Package opt is the optimizer driver: it builds plans bottom-up exactly as
// Section 2.3 describes — first referencing the AccessRoot STAR to build
// plans for individual tables, then repeatedly referencing the JoinRoot STAR
// to join plans generated earlier, until all tables have been joined —
// keeping every Set of Alternative Plans in the Glue plan table, and finally
// imposing the query's root requirements (output order, query site) through
// Glue.
package opt

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/expr"
	"stars/internal/glue"
	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/star"
)

// Options tune the optimizer. The zero value is the System-R-ish default:
// join-predicate-connected pairs only, composite inners allowed, Glue
// returning cheapest plans, dominance pruning on.
type Options struct {
	// CartesianProducts admits joinable pairs with no connecting join
	// predicate (Section 2.3's compile-time parameter). Pairs with an
	// eligible join predicate are always preferred; Cartesian pairs are
	// added, not substituted.
	CartesianProducts bool
	// NoCompositeInners restricts enumeration to pairs where at least one
	// side is a single table (left-deep shapes); the default permits
	// composite inners like (A*B)*(C*D).
	NoCompositeInners bool
	// KeepAllGlue makes every Glue reference return all satisfying plans
	// rather than the cheapest (ablation).
	KeepAllGlue bool
	// DisablePruning turns off dominance pruning in the plan table
	// (ablation).
	DisablePruning bool
	// Weights override the cost weights; zero value uses DefaultWeights.
	Weights cost.Weights
	// Rules overrides the repertoire; nil loads the built-in rule set.
	Rules *star.RuleSet
	// Obs, when non-nil, receives the optimization's event stream (rule
	// spans, Glue and plan-table events, phase spans) and metrics. When
	// nil, obs.DefaultSink() is consulted; when that is nil too, observability
	// is off and costs only nil checks.
	Obs *obs.Sink
	// Trace captures the rule-firing log (Result.Trace). It is sugar for
	// injecting a private sink via Obs: the log is reconstructed from the
	// event stream.
	Trace bool
	// JoinRoot overrides the root join STAR's name; default "JoinRoot".
	JoinRoot string
	// Prepare, when non-nil, customizes the engine after construction
	// (extra builders/helpers for DBC extensions).
	Prepare func(*star.Engine)
	// Parallelism is the number of worker goroutines the bottom-up join
	// enumeration fans each subset-size rank out to. 1 runs the rank
	// single-threaded; 0 uses the process default (SetDefaultParallelism,
	// falling back to GOMAXPROCS). Whatever the value, results are
	// deterministic: every parallelism level chooses plans with identical
	// fingerprints, retains an identical plan table, and reports identical
	// counters. See docs/PERFORMANCE.md.
	Parallelism int
}

// Stats aggregates optimization-effort counters for one query.
type Stats struct {
	// Star counts the rule engine's work.
	Star star.Stats
	// Glue counts the Glue mechanism's work.
	Glue glue.Stats
	// Subsets is the number of table subsets enumerated.
	Subsets int64
	// Pairs is the number of joinable partitions for which JoinRoot was
	// referenced.
	Pairs int64
	// PlansRetained is the plan-table population after optimization.
	PlansRetained int64
	// PlansInserted and PlansPruned report plan-table churn.
	PlansInserted int64
	PlansPruned   int64
	// Elapsed is wall-clock optimization time.
	Elapsed time.Duration
}

// Result is one optimization's outcome.
type Result struct {
	// Best is the chosen plan, priced, with root requirements satisfied.
	Best *plan.Node
	// Stats aggregates effort counters.
	Stats Stats
	// Trace is the rule-firing log when Options.Trace was set
	// (reconstructed from the observability event stream).
	Trace []star.TraceEntry
	// Obs is the sink the optimization reported into (nil when
	// observability was off) — callers export it (NDJSON, Chrome trace,
	// Prometheus text) or inspect its metrics.
	Obs *obs.Sink
	// Table is the final plan table (alternatives for every subset).
	Table *glue.PlanTable
	// Engine is the rule engine used (for inspecting registries in
	// tests and tools).
	Engine *star.Engine

	// arena owns the storage of every plan node this optimization built;
	// Release recycles it.
	arena *plan.Arena
}

// arenaPool recycles plan arenas across optimizations so a long-running
// server reuses slabs instead of growing the heap per query.
var arenaPool = sync.Pool{New: func() any { return plan.NewArena() }}

// arenaPoison, when set (lifetime tests only), turns on poison-on-reset for
// every arena an optimization checks out, so a plan pointer that escapes
// Release without being detached reads a recognizably dead node instead of
// silently stale data.
var arenaPoison bool

// Release recycles the result's plan storage for a later optimization. After
// Release only Best remains usable — it is detached (deep-copied to the
// heap) first — while Table, Engine, and every other plan pointer obtained
// from this result become invalid. Callers that never Release simply let the
// GC reclaim the arena with the result; callers on a hot path (the serve
// loop, benchmarks) Release to make plan storage O(live queries) instead of
// O(queries ever run).
func (r *Result) Release() {
	a := r.arena
	if a == nil {
		return
	}
	r.arena = nil
	r.Best = plan.Detach(r.Best)
	r.Table = nil
	r.Engine = nil
	a.Reset()
	arenaPool.Put(a)
}

// Optimizer optimizes queries against one catalog.
type Optimizer struct {
	Cat  *catalog.Catalog
	Opts Options
}

// New builds an optimizer.
func New(cat *catalog.Catalog, opts Options) *Optimizer {
	return &Optimizer{Cat: cat, Opts: opts}
}

// Optimize builds all plans for the query bottom-up and returns the cheapest
// plan satisfying the root requirements.
func (o *Optimizer) Optimize(g *query.Graph) (*Result, error) {
	start := time.Now()
	// Resolve the sink first so the prepare phase (validation, environment
	// and engine construction) is attributed when a profiler rides on it: an
	// explicit Options.Obs wins; Options.Trace without one gets a private
	// sink so the trace can be reconstructed; otherwise the process-wide
	// obs.DefaultSink (nil when observability is off).
	sink := o.Opts.Obs
	if sink == nil && o.Opts.Trace {
		sink = obs.NewSink()
	}
	if sink == nil {
		sink = obs.DefaultSink()
	}
	labels := sink.ProfLabels()
	if labels {
		defer pprof.SetGoroutineLabels(context.Background())
	}

	var prepSp obs.Span
	if sink.Enabled() {
		prepSp = sink.StartSpan(obs.EvPhase, "prepare", "", 0)
	}
	phaseLabels(nil, labels, "prepare")
	if err := g.Validate(o.Cat); err != nil {
		prepSp.End(0)
		return nil, err
	}

	w := o.Opts.Weights
	if w == (cost.Weights{}) {
		w = cost.DefaultWeights
	}
	env := cost.NewEnv(o.Cat, w)
	env.Obs = sink
	env.Arena = arenaPool.Get().(*plan.Arena)
	if arenaPoison {
		env.Arena.SetPoison(true)
	}
	for _, q := range g.Quants {
		env.BindQuantifier(q.Name, q.Table)
	}

	rules := o.Opts.Rules
	if rules == nil {
		rules = star.DefaultRules()
	}

	// Memoize the needed-columns resolution once per query: the engine,
	// Glue, and every enumeration worker consult it repeatedly, and the
	// underlying graph walk allocates. The map is read-only once built, so
	// forked worker engines share it freely.
	needed := make(map[string][]expr.ColID, len(g.Quants))
	for _, q := range g.Quants {
		needed[q.Name] = g.NeededCols(o.Cat, q.Name)
	}

	en := star.NewEngine(rules, env)
	en.QueryTables = g.QuantNames()
	en.NeededCols = func(q string) []expr.ColID { return needed[q] }
	en.Obs = sink
	if o.Opts.Prepare != nil {
		o.Opts.Prepare(en)
	}
	if err := en.Validate(); err != nil {
		prepSp.End(0)
		return nil, err
	}

	table := glue.NewPlanTable()
	table.PruneDisabled = o.Opts.DisablePruning
	table.Obs = sink
	gl := &glue.Gluer{Engine: en, Graph: g, Table: table, KeepAll: o.Opts.KeepAllGlue}
	en.Glue = gl.Glue
	en.PlanSites = gl.PlanSites

	res := &Result{Table: table, Engine: en, Obs: sink, arena: env.Arena}
	prepSp.End(0)

	// Phase 1: access plans for every quantifier (Section 2.3).
	var accessSp obs.Span
	if sink.Enabled() {
		accessSp = sink.StartSpan(obs.EvPhase, "access", "", 0)
	}
	phaseLabels(en, labels, "access")
	for _, q := range g.Quants {
		ts := expr.NewTableSet(q.Name)
		preds := g.BasePreds(q.Name)
		sap, err := en.EvalRule(glue.AccessRootRule, []star.Value{
			star.StreamValue(ts),
			star.ColsValue(needed[q.Name]),
			star.PredsValue(preds),
		})
		if err != nil {
			return nil, fmt.Errorf("opt: access plans for %s: %w", q.Name, err)
		}
		if len(sap) == 0 {
			return nil, fmt.Errorf("opt: no access plans for %s", q.Name)
		}
		table.Insert(ts, preds, sap)
	}
	accessSp.End(int64(table.Size()))

	// Phase 2: bottom-up join enumeration over quantifier subsets,
	// rank-parallel (see parallel.go).
	if err := o.enumerate(g, en, gl, table, res); err != nil {
		return nil, err
	}

	// Phase 3: root requirements — deliver at the query site in the
	// requested order.
	var rootSp obs.Span
	if sink.Enabled() {
		rootSp = sink.StartSpan(obs.EvPhase, "root", "", 0)
	}
	phaseLabels(en, labels, "root")
	rootReq := plan.Reqd{Order: g.OrderBy}
	site := o.Cat.QuerySite
	rootReq.Site = &site
	best, err := gl.Glue(&star.GlueRequest{Tables: g.TableSet(), Req: rootReq})
	if err != nil {
		return nil, fmt.Errorf("opt: root requirements: %w", err)
	}
	res.Best = glue.CheapestOf(best)
	rootSp.End(int64(len(best)))

	res.Stats.Star = en.Stats
	res.Stats.Glue = gl.Stats
	res.Stats.PlansRetained = int64(table.Size())
	res.Stats.PlansInserted = table.Inserted
	res.Stats.PlansPruned = table.Pruned
	res.Stats.Elapsed = time.Since(start)
	if sink.Enabled() {
		finSp := sink.StartSpan(obs.EvPhase, "finalize", "", 0)
		phaseLabels(en, labels, "finalize")
		publishMetrics(sink.Registry(), res)
		emitCoverage(sink, rules, res)
		finSp.End(0)
		// Phase/rank tallies flush after the finalize span closes so the
		// exported deltas include it; repeat publishes stay exact.
		if p := sink.Prof(); p != nil {
			p.PublishMetrics(sink.Registry())
		}
		res.Trace = star.TraceFromEvents(sink.Events())
	}
	return res, nil
}

// phaseLabels pins the driver goroutine's pprof label to the current
// optimizer phase and hands the labeled context to the engine so EvalRule
// can compose star= onto it. No-op unless the attached profiler asked for
// labels.
func phaseLabels(en *star.Engine, on bool, phase string) {
	if !on {
		return
	}
	ctx := pprof.WithLabels(context.Background(), pprof.Labels("phase", phase))
	pprof.SetGoroutineLabels(ctx)
	if en != nil {
		en.LabelCtx = ctx
	}
}

// publishMetrics folds one optimization's counters into the sink's registry
// so long-running processes (starbench -metrics) accumulate across queries.
func publishMetrics(reg *obs.Registry, res *Result) {
	st := res.Stats
	reg.Counter("star_rule_refs_total").Add(st.Star.RuleRefs)
	reg.Counter("star_alts_considered_total").Add(st.Star.AltsConsidered)
	reg.Counter("star_alts_fired_total").Add(st.Star.AltsFired)
	reg.Counter("star_alts_rejected_total").Add(st.Star.AltsRejected)
	reg.Counter("star_plans_built_total").Add(st.Star.PlansBuilt)
	reg.Counter("star_plans_rejected_total").Add(st.Star.PlansRejected)
	reg.Counter("glue_calls_total").Add(st.Glue.Calls)
	reg.Counter("glue_hits_total").Add(st.Glue.Hits)
	reg.Counter("glue_misses_total").Add(st.Glue.Misses)
	reg.Counter("glue_veneers_total").Add(st.Glue.Veneers)
	reg.Counter("plantable_inserted_total").Add(st.PlansInserted)
	reg.Counter("plantable_pruned_total").Add(st.PlansPruned)
	reg.Counter("opt_subsets_total").Add(st.Subsets)
	reg.Counter("opt_pairs_total").Add(st.Pairs)
	reg.Gauge("plantable_plans").Set(st.PlansRetained)
	reg.Histogram("opt_elapsed_seconds").Observe(st.Elapsed)
}

// joinRootName returns the configured root join STAR.
func (o *Optimizer) joinRootName() string {
	if o.Opts.JoinRoot != "" {
		return o.Opts.JoinRoot
	}
	return "JoinRoot"
}
