package opt

import (
	"strings"
	"testing"

	"stars/internal/catalog"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/plan"
	"stars/internal/query"
)

// figure1Catalog is the paper's Section 2.1 schema: DEPT and EMP with an
// index on EMP.DNO.
func figure1Catalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "DEPT",
		Cols: []*catalog.Column{
			{Name: "DNO", Type: datum.KindInt, NDV: 100},
			{Name: "MGR", Type: datum.KindString, NDV: 90, Width: 12},
			{Name: "BUDGET", Type: datum.KindFloat},
		},
		Card: 100,
	})
	cat.AddTable(&catalog.Table{
		Name: "EMP",
		Cols: []*catalog.Column{
			{Name: "ENO", Type: datum.KindInt, NDV: 10000},
			{Name: "DNO", Type: datum.KindInt, NDV: 100},
			{Name: "NAME", Type: datum.KindString, NDV: 9000, Width: 16},
			{Name: "ADDRESS", Type: datum.KindString, NDV: 9500, Width: 24},
			{Name: "SAL", Type: datum.KindFloat},
		},
		Card: 10000,
		Paths: []*catalog.AccessPath{
			{Name: "EMPDNO", Table: "EMP", Cols: []string{"DNO"}},
		},
	})
	if err := cat.Validate(); err != nil {
		panic(err)
	}
	return cat
}

// figure1Query is DEPT ⋈ EMP on DNO with MGR = 'Haas' on DEPT, projecting
// the columns Figure 1 shows.
func figure1Query() *query.Graph {
	return &query.Graph{
		Quants: []query.Quantifier{
			{Name: "DEPT", Table: "DEPT"},
			{Name: "EMP", Table: "EMP"},
		},
		Preds: expr.NewPredSet(
			&expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "DNO"), R: expr.C("EMP", "DNO")},
			&expr.Cmp{Op: expr.EQ, L: expr.C("DEPT", "MGR"), R: &expr.Const{Val: datum.NewString("Haas")}},
		),
		Select: []expr.ColID{
			{Table: "DEPT", Col: "DNO"}, {Table: "DEPT", Col: "MGR"},
			{Table: "EMP", Col: "NAME"}, {Table: "EMP", Col: "ADDRESS"},
		},
	}
}

func TestOptimizeFigure1(t *testing.T) {
	o := New(figure1Catalog(), Options{})
	res, err := o.Optimize(figure1Query())
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if res.Best == nil {
		t.Fatal("no best plan")
	}
	out := plan.Explain(res.Best)
	t.Logf("best plan:\n%s", out)
	t.Logf("stats: %+v", res.Stats)
	if res.Best.Props.Cost.Total <= 0 {
		t.Fatalf("non-positive cost: %v", res.Best.Props.Cost)
	}
	if !res.Best.Props.Tables().Equal(expr.NewTableSet("DEPT", "EMP")) {
		t.Fatalf("best plan tables = %v", res.Best.Props.Tables().Slice())
	}
	// The plan must apply both predicates somewhere.
	if res.Best.Props.Preds().Len() != 2 {
		t.Fatalf("best plan applies %d preds, want 2:\n%s", res.Best.Props.Preds().Len(), out)
	}
	if !strings.Contains(out, "JOIN") {
		t.Fatalf("no JOIN in plan:\n%s", out)
	}
}
