package opt

import (
	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/star"
	"stars/internal/starcheck"
)

// Lint statically checks the rule set an optimization with these options
// would run: Options.Rules (or the built-in repertoire), with the signature
// table of an engine after Options.Prepare — so extension-registered
// builders and helpers resolve, and declared extension signatures get full
// arity/kind checking — and Options.JoinRoot steering the reachability
// roots. The probe engine never optimizes anything; it exists only to
// collect what Prepare registers.
//
// This is the hook behind `starburst lint` and the automatic warn-level lint
// wherever -rules files load (CLI commands, serve boot).
func Lint(cat *catalog.Catalog, o Options) []starcheck.Diag {
	diags, _ := lint(cat, o, false)
	return diags
}

// LintSyntactic is Lint restricted to the five syntactic passes — no
// abstract interpretation, no SC1xx–SC3xx. `starburst lint -syntactic`
// uses it; CI pins fixtures that are clean here but tripped by Lint.
func LintSyntactic(cat *catalog.Catalog, o Options) []starcheck.Diag {
	diags, _ := lint(cat, o, true)
	return diags
}

// ShapeGrammar infers the plan-shape grammar of the rule set an
// optimization with these options would run (see starcheck.Grammar): the
// regular-tree grammar of operator trees the STARs and Glue veneers can
// generate. Like Lint, it builds a probe engine only to collect what
// Prepare registers — it never optimizes anything, so the output depends
// solely on the rule text and signature table and is byte-deterministic.
func ShapeGrammar(cat *catalog.Catalog, o Options) *starcheck.Grammar {
	_, g := lint(cat, o, false)
	return g
}

func lint(cat *catalog.Catalog, o Options, syntactic bool) ([]starcheck.Diag, *starcheck.Grammar) {
	rules := o.Rules
	if rules == nil {
		rules = star.DefaultRules()
	}
	w := o.Weights
	if w == (cost.Weights{}) {
		w = cost.DefaultWeights
	}
	en := star.NewEngine(rules, cost.NewEnv(cat, w))
	if o.Prepare != nil {
		o.Prepare(en)
	}
	return starcheck.CheckAndInfer(rules, starcheck.Config{
		JoinRoot:   o.JoinRoot,
		Signatures: en.Signatures(),
		Syntactic:  syntactic,
	})
}
