package opt

import (
	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/star"
	"stars/internal/starcheck"
)

// Lint statically checks the rule set an optimization with these options
// would run: Options.Rules (or the built-in repertoire), with the signature
// table of an engine after Options.Prepare — so extension-registered
// builders and helpers resolve, and declared extension signatures get full
// arity/kind checking — and Options.JoinRoot steering the reachability
// roots. The probe engine never optimizes anything; it exists only to
// collect what Prepare registers.
//
// This is the hook behind `starburst lint` and the automatic warn-level lint
// wherever -rules files load (CLI commands, serve boot).
func Lint(cat *catalog.Catalog, o Options) []starcheck.Diag {
	rules := o.Rules
	if rules == nil {
		rules = star.DefaultRules()
	}
	w := o.Weights
	if w == (cost.Weights{}) {
		w = cost.DefaultWeights
	}
	en := star.NewEngine(rules, cost.NewEnv(cat, w))
	if o.Prepare != nil {
		o.Prepare(en)
	}
	return starcheck.Check(rules, starcheck.Config{
		JoinRoot:   o.JoinRoot,
		Signatures: en.Signatures(),
	})
}
