package opt

import (
	"testing"
	"time"

	"stars/internal/obs"
	"stars/internal/workload"
)

// profiledRun optimizes the star-k workload with a profiler attached at the
// given parallelism and returns the accumulator snapshot.
func profiledRun(t *testing.T, k, parallelism int) obs.ProfSnapshot {
	t.Helper()
	sink := obs.NewMetricsSink()
	sink.EnableProf(obs.ProfOptions{})
	o := New(workload.StarCatalog(k, 100000, 500), Options{Obs: sink, Parallelism: parallelism})
	if _, err := o.Optimize(workload.StarQuery(k)); err != nil {
		t.Fatalf("optimize (parallelism=%d): %v", parallelism, err)
	}
	return sink.Prof().Snapshot()
}

// counts projects a snapshot down to its deterministic fields: span counts
// per key and activity operation counts. Durations and allocation figures
// are wall-clock-dependent and excluded by design.
func counts(s obs.ProfSnapshot) map[string]int64 {
	out := map[string]int64{}
	for k, e := range s.Phases {
		out["phase/"+k] = e.Count
	}
	for k, e := range s.Rules {
		out["rule/"+k] = e.Count
	}
	for k, e := range s.Spans {
		out["span/"+k] = e.Count
	}
	for a := obs.Activity(0); a < obs.NumActivities; a++ {
		out["act/"+a.String()] = s.Activities[a].Count
	}
	var tasks int64
	for _, r := range s.Ranks {
		tasks += int64(r.Tasks)
	}
	out["rank/tasks"] = tasks
	return out
}

// TestProfileTalliesDeterministicAcrossParallelism is the acceptance
// criterion: phase, rule, and activity tallies must be bit-identical at
// every parallelism level.
func TestProfileTalliesDeterministicAcrossParallelism(t *testing.T) {
	base := counts(profiledRun(t, 4, 1))
	if base["rule/JoinRoot"] == 0 || base["act/guard_eval"] == 0 ||
		base["act/cost_price"] == 0 || base["act/plantable_offer"] == 0 {
		t.Fatalf("serial profile missing expected tallies: %v", base)
	}
	for _, par := range []int{2, 4, 8} {
		got := counts(profiledRun(t, 4, par))
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: key sets differ: %v vs %v", par, got, base)
		}
		for k, v := range base {
			if got[k] != v {
				t.Errorf("parallelism %d: %s = %d, want %d", par, k, got[k], v)
			}
		}
	}
}

// TestProfilePhasesCoverElapsed checks the attribution completeness
// property the CI smoke gates harder (95%) on star8: phase self-times are
// contiguous driver windows, so their sum accounts for nearly all of the
// measured wall clock. The test bound is loose to absorb scheduler noise
// on small runs.
func TestProfilePhasesCoverElapsed(t *testing.T) {
	sink := obs.NewMetricsSink()
	sink.EnableProf(obs.ProfOptions{})
	o := New(workload.StarCatalog(5, 100000, 500), Options{Obs: sink, Parallelism: 1})
	start := time.Now()
	if _, err := o.Optimize(workload.StarQuery(5)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Nanoseconds()
	snap := sink.Prof().Snapshot()
	var sum int64
	for _, e := range snap.Phases {
		sum += e.SelfNS
	}
	if sum > elapsed {
		t.Fatalf("phase self sum %d exceeds elapsed %d", sum, elapsed)
	}
	if float64(sum) < 0.7*float64(elapsed) {
		t.Fatalf("phase self sum %d covers only %.1f%% of elapsed %d",
			sum, 100*float64(sum)/float64(elapsed), elapsed)
	}
	for _, ph := range []string{"prepare", "access", "join-2", "join-5", "root", "finalize"} {
		if snap.Phases[ph].Count != 1 {
			t.Errorf("phase %s count = %d, want 1", ph, snap.Phases[ph].Count)
		}
	}
}

// TestProfileRankTelemetry checks the parallel-path imbalance telemetry:
// every join rank reports its task count and a busy vector sized to the
// workers actually used.
func TestProfileRankTelemetry(t *testing.T) {
	snap := profiledRun(t, 5, 4)
	if len(snap.Ranks) != 5 { // star-5 has 6 quantifiers: join-2 .. join-6
		t.Fatalf("ranks = %d, want 5 (%+v)", len(snap.Ranks), snap.Ranks)
	}
	var sawMultiWorker bool
	for _, r := range snap.Ranks {
		if r.Tasks <= 0 {
			t.Errorf("rank %d: tasks = %d, want > 0", r.Rank, r.Tasks)
		}
		if len(r.BusyNS) != r.Workers {
			t.Errorf("rank %d: busy vector len %d, want workers %d", r.Rank, len(r.BusyNS), r.Workers)
		}
		if r.Workers > 1 {
			sawMultiWorker = true
		}
		var busy int64
		for _, b := range r.BusyNS {
			busy += b
		}
		if r.ExecNS > 0 && busy <= 0 {
			t.Errorf("rank %d: exec window %dns with zero busy time", r.Rank, r.ExecNS)
		}
	}
	if !sawMultiWorker {
		t.Error("no rank used more than one worker at parallelism 4")
	}
}

// TestProfileAllocAttributionSerial cross-checks the per-phase allocation
// attribution against an independent bracket of the same runtime counter
// over the whole serial run.
func TestProfileAllocAttributionSerial(t *testing.T) {
	sink := obs.NewMetricsSink()
	sink.EnableProf(obs.ProfOptions{})
	o := New(workload.StarCatalog(5, 100000, 500), Options{Obs: sink, Parallelism: 1})
	a0 := obs.HeapAllocs()
	if _, err := o.Optimize(workload.StarQuery(5)); err != nil {
		t.Fatal(err)
	}
	total := obs.HeapAllocs() - a0
	snap := sink.Prof().Snapshot()
	var sum int64
	for _, e := range snap.Phases {
		sum += e.Allocs
	}
	if sum <= 0 || total <= 0 {
		t.Fatalf("allocs: phase sum %d, bracket %d — want both positive", sum, total)
	}
	ratio := float64(sum) / float64(total)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("phase alloc sum %d vs bracketed %d (ratio %.2f), want within 15%%", sum, total, ratio)
	}
}

// TestProfileDisabledKeepsHotPathAllocFree re-pins the zero-overhead
// contract from the profiler's angle: with no profiler attached the
// optimizer's behavior and the nil-sink hot path (TestEnumerationHotPathAllocs)
// are untouched, and ProfEnabled stays false end to end.
func TestProfileDisabledKeepsHotPathAllocFree(t *testing.T) {
	sink := obs.NewMetricsSink()
	o := New(workload.StarCatalog(4, 100000, 500), Options{Obs: sink, Parallelism: 1})
	res, err := o.Optimize(workload.StarQuery(4))
	if err != nil {
		t.Fatal(err)
	}
	if sink.ProfEnabled() {
		t.Fatal("profiler attached without EnableProf")
	}
	if res.Obs.Prof() != nil {
		t.Fatal("result sink grew a profiler")
	}
	if len(sink.Prof().Snapshot().Phases) != 0 {
		t.Fatal("nil profiler snapshot not empty")
	}
}
