// Rank-parallel bottom-up join enumeration.
//
// Section 2.3 builds plans strictly bottom-up: every plan for a subset of
// size k consumes only plan-table entries for smaller subsets, so the
// subsets within one size rank are independent work. enumerate exploits
// that: each rank's subsets become tasks fanned out to a worker pool, with
// a barrier between ranks so size-k workers only ever read committed
// size-<k entries.
//
// Determinism is the design constraint — a parallel run must choose plans
// with identical fingerprints, retain an identical plan table, and report
// identical counters to a serial run. Three mechanisms deliver it:
//
//  1. Isolation: each task works against its own overlay plan table
//     (glue.NewOverlay) over the frozen base, its own forked engine and
//     pricing environment, and its own child obs sink. A task's outcome
//     therefore depends only on the committed base — never on how sibling
//     tasks were scheduled.
//  2. Namespacing: forked engines derive temp/index names from the task's
//     subset mask ("_t<mask>.<seq>"), so generated names are a function of
//     the work item, not of scheduling order.
//  3. Ordered merge: at the rank barrier the driver absorbs every task —
//     events, metrics, stats, temps, and overlay writes — in ascending
//     subset-mask order, the order a serial walk visits subsets in.
//
// Parallelism: 1 runs the very same task/overlay/merge pipeline on the
// calling goroutine, which is what makes the equivalence checkable rather
// than aspirational (internal/opt/parallel_test.go asserts it).
package opt

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stars/internal/expr"
	"stars/internal/glue"
	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/star"
)

// defaultParallelism is the process-wide fan-out used when
// Options.Parallelism is zero; zero here falls back to GOMAXPROCS.
var defaultParallelism atomic.Int32

// SetDefaultParallelism sets the process-wide enumeration fan-out used when
// Options.Parallelism is zero (n <= 0 restores the GOMAXPROCS default).
// Batch tools expose it as a -parallel flag; servers should prefer setting
// Options.Parallelism per request.
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallelism.Store(int32(n))
}

// resolveParallelism maps an Options.Parallelism value to a worker count.
func resolveParallelism(n int) int {
	if n > 0 {
		return n
	}
	if d := defaultParallelism.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// denseMaskLimit bounds the quantifier count for which the mask cache
// precomputes all 2^n subsets. Beyond it (where exhaustive enumeration is
// computationally out of reach anyway) translations are computed on demand.
const denseMaskLimit = 16

// maskCache interns the mask -> TableSet / canonical-key translation for
// one query. The old per-reference closure rebuilt a map[string]bool for
// every mask mention — twice per pair — which dominated the enumeration's
// allocation profile. The cache is built once, before the rank loop, and is
// read-only afterwards, so enumeration workers share it without locks.
type maskCache struct {
	n     int
	names []string
	sets  []expr.TableSet
	keys  []string
}

func newMaskCache(g *query.Graph) *maskCache {
	mc := &maskCache{n: len(g.Quants), names: g.QuantNames()}
	if mc.n > denseMaskLimit {
		return mc
	}
	full := uint32(1)<<uint(mc.n) - 1
	mc.sets = make([]expr.TableSet, full+1)
	mc.keys = make([]string, full+1)
	for mask := uint32(1); mask <= full; mask++ {
		ts := mc.build(mask)
		mc.sets[mask] = ts
		mc.keys[mask] = ts.Key()
	}
	return mc
}

// set returns the (shared, never-mutated) TableSet for mask.
func (mc *maskCache) set(mask uint32) expr.TableSet {
	if mc.sets != nil {
		return mc.sets[mask]
	}
	return mc.build(mask)
}

// key returns the canonical table-set key for mask.
func (mc *maskCache) key(mask uint32) string {
	if mc.keys != nil {
		return mc.keys[mask]
	}
	return mc.build(mask).Key()
}

func (mc *maskCache) build(mask uint32) expr.TableSet {
	names := make([]string, 0, bits.OnesCount32(mask))
	for i := 0; i < mc.n; i++ {
		if mask&(1<<uint(i)) != 0 {
			names = append(names, mc.names[i])
		}
	}
	return expr.NewTableSet(names...)
}

// subsetTask is one unit of rank-parallel work: all joinable partitions of
// one quantifier subset, evaluated against isolated state that the barrier
// later folds back in.
type subsetTask struct {
	mask  uint32
	pairs int64
	sink  *obs.Sink
	en    *star.Engine
	gl    *glue.Gluer
	table *glue.PlanTable
	err   error
}

// enumerate walks quantifier subsets by size, referencing JoinRoot for each
// joinable partition of each subset. Subsets are bitmasks over the
// quantifier list; quantifier counts beyond 30 are rejected (well past what
// dynamic-programming enumeration is for). Within each size rank the
// subsets run on Options.Parallelism workers; results merge at the rank
// barrier in ascending mask order.
func (o *Optimizer) enumerate(g *query.Graph, en *star.Engine, gl *glue.Gluer, table *glue.PlanTable, res *Result) error {
	n := len(g.Quants)
	if n > 30 {
		return fmt.Errorf("opt: %d quantifiers exceeds the enumeration limit", n)
	}
	if n == 1 {
		return nil
	}
	mc := newMaskCache(g)
	par := resolveParallelism(o.Opts.Parallelism)
	sink := res.Obs

	// plan.Node memoizes Key/Fingerprint lazily — a write. Populate the
	// memos of the committed access plans while the table is still
	// single-threaded; Absorb keeps the invariant for later ranks.
	table.MemoizeIdentities()

	profiled := sink.ProfEnabled()
	labels := sink.ProfLabels()
	full := uint32(1)<<uint(n) - 1
	for size := 2; size <= n; size++ {
		var sizeSp obs.Span
		if sink.Enabled() {
			sizeSp = sink.StartSpan(obs.EvPhase, fmt.Sprintf("join-%d", size), "", 0)
		}
		phaseLabels(en, labels, fmt.Sprintf("join-%d", size))
		sizePairs := res.Stats.Pairs
		var rankStart time.Time
		if profiled {
			rankStart = time.Now()
		}

		tasks := make([]*subsetTask, 0, 64)
		for mask := uint32(1)<<uint(size) - 1; mask <= full; {
			tasks = append(tasks, &subsetTask{mask: mask})
			// Gosper's hack: next-larger mask with the same popcount.
			c := mask & (^mask + 1)
			r := mask + c
			if r > full {
				break
			}
			mask = r | ((mask^r)>>2)/c
		}
		var collectNS int64
		var execStart time.Time
		if profiled {
			collectNS = int64(time.Since(rankStart))
			execStart = time.Now()
		}
		busy := runTasks(par, profiled, tasks, func(t *subsetTask) {
			o.runSubset(t, g, en, gl, table, mc, sink)
		})
		var execNS int64
		var absorbStart time.Time
		if profiled {
			execNS = int64(time.Since(execStart))
			absorbStart = time.Now()
		}

		// Barrier: fold tasks back in ascending mask order — the order a
		// serial walk visits subsets in — so dominance tie-breaks, event
		// sequence numbers, and generated names come out identical at
		// every parallelism level.
		for _, t := range tasks {
			if t.err != nil {
				return t.err
			}
			res.Stats.Subsets++
			res.Stats.Pairs += t.pairs
			sink.Absorb(t.sink)
			en.Stats.Add(t.en.Stats)
			gl.Stats.Add(t.gl.Stats)
			en.Cost.AbsorbTemps(t.en.Cost)
			en.Cost.Arena.Absorb(t.en.Cost.Arena)
			table.Absorb(t.table)
		}
		if profiled {
			sink.ProfRank(obs.RankSample{
				Rank:      size,
				Tasks:     len(tasks),
				Workers:   len(busy),
				WallNS:    int64(time.Since(rankStart)),
				CollectNS: collectNS,
				ExecNS:    execNS,
				AbsorbNS:  int64(time.Since(absorbStart)),
				BusyNS:    busy,
			})
		}
		sizeSp.End(res.Stats.Pairs - sizePairs)
	}
	if len(table.Entry(g.TableSet())) == 0 {
		return fmt.Errorf("opt: no complete plan produced (disconnected join graph? enable CartesianProducts)")
	}
	return nil
}

// runTasks executes the rank's tasks on par workers (inline when par <= 1).
// Task completion order is scheduling-dependent; the caller re-establishes
// determinism by merging in task order. When profiled, the returned slice
// holds each worker's busy time over the execution window (each slot is
// written by exactly one worker goroutine and read only after wg.Wait);
// otherwise it is nil.
func runTasks(par int, profiled bool, tasks []*subsetTask, run func(*subsetTask)) []int64 {
	if par > len(tasks) {
		par = len(tasks)
	}
	if par <= 1 {
		if !profiled {
			for _, t := range tasks {
				run(t)
			}
			return nil
		}
		start := time.Now()
		for _, t := range tasks {
			run(t)
		}
		return []int64{int64(time.Since(start))}
	}
	var busy []int64
	if profiled {
		busy = make([]int64, par)
	}
	ch := make(chan *subsetTask)
	var wg sync.WaitGroup
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := range ch {
				if profiled {
					t0 := time.Now()
					run(t)
					busy[w] += int64(time.Since(t0))
				} else {
					run(t)
				}
			}
		}(i)
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return busy
}

// runSubset builds the isolated state for one subset task — child sink,
// forked pricing environment and engine (temp names namespaced by the
// subset mask), overlay plan table, and Gluer — then evaluates the subset.
func (o *Optimizer) runSubset(t *subsetTask, g *query.Graph, parent *star.Engine, parentGl *glue.Gluer, base *glue.PlanTable, mc *maskCache, sink *obs.Sink) {
	t.sink = sink.Child() // nil when observability is off
	env := parent.Cost.Fork()
	env.Obs = t.sink
	// A fresh sub-arena per task keeps node allocation single-goroutine; the
	// barrier absorbs its slabs into the parent arena (addresses unchanged).
	env.Arena = plan.NewArena()
	en := parent.Fork(env, t.sink, strconv.FormatUint(uint64(t.mask), 10)+".")
	if t.sink.ProfLabels() {
		// Label the worker goroutine with the rank it is executing; EvalRule
		// composes star= on top. Labels follow the task, so a worker pool
		// goroutine re-labels per task.
		rank := strconv.Itoa(bits.OnesCount32(t.mask))
		ctx := pprof.WithLabels(context.Background(), pprof.Labels("phase", "join-"+rank, "rank", rank))
		pprof.SetGoroutineLabels(ctx)
		en.LabelCtx = ctx
	}
	ov := glue.NewOverlay(base)
	ov.Obs = t.sink
	gl := &glue.Gluer{Engine: en, Graph: g, Table: ov, KeepAll: parentGl.KeepAll}
	en.Glue = gl.Glue
	en.PlanSites = gl.PlanSites
	t.en, t.gl, t.table = en, gl, ov
	t.err = o.joinSubset(t, g, en, ov, mc)
}

// joinSubset references JoinRoot for every joinable partition of the task's
// subset — the body of the old serial per-mask loop, now reading committed
// entries through the overlay and writing results into it.
func (o *Optimizer) joinSubset(t *subsetTask, g *query.Graph, en *star.Engine, table *glue.PlanTable, mc *maskCache) error {
	mask := t.mask
	S := mc.set(mask)
	eligible := g.EligibleWithin(S)
	sink := en.Obs
	full := uint32(1)<<uint(mc.n) - 1

	type pair struct{ s1, s2 uint32 }
	var connected, cartesian []pair
	low := mask & (^mask + 1) // dedupe unordered partitions: s1 keeps the lowest bit
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		if sub&low == 0 {
			continue
		}
		s1, s2 := sub, mask^sub
		if o.Opts.NoCompositeInners &&
			bits.OnesCount32(s1) > 1 && bits.OnesCount32(s2) > 1 {
			continue
		}
		if !table.HasEntry(mc.set(s1)) || !table.HasEntry(mc.set(s2)) {
			continue
		}
		if g.Connected(mc.set(s1), mc.set(s2)) {
			connected = append(connected, pair{s1, s2})
		} else {
			cartesian = append(cartesian, pair{s1, s2})
		}
	}
	pairs := connected
	// Prefer predicate-connected pairs as System R and R* did; consider
	// Cartesian products only when configured, or when nothing connects
	// the subset at the final join (so queries with disconnected join
	// graphs still plan).
	if o.Opts.CartesianProducts || (len(connected) == 0 && mask == full) {
		pairs = append(pairs, cartesian...)
	}
	for _, pr := range pairs {
		t.pairs++
		if sink.Enabled() {
			sink.Emit(obs.Event{Name: obs.EvPair,
				A1: mc.key(pr.s1), A2: mc.key(pr.s2)})
		}
		p := g.NewlyEligible(mc.set(pr.s1), mc.set(pr.s2))
		sap, err := en.EvalRule(o.joinRootName(), []star.Value{
			star.StreamValue(mc.set(pr.s1)),
			star.StreamValue(mc.set(pr.s2)),
			star.PredsValue(p),
		})
		if err != nil {
			return fmt.Errorf("opt: joining {%s} with {%s}: %w",
				mc.key(pr.s1), mc.key(pr.s2), err)
		}
		table.Insert(S, eligible, sap)
	}
	return nil
}
