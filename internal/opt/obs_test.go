package opt

import (
	"sync"
	"testing"

	"stars/internal/obs"
	"stars/internal/star"
	"stars/internal/workload"
)

func TestObsSinkCapturesEventsAndMetrics(t *testing.T) {
	sink := obs.NewSink()
	res, err := New(workload.EmpDept(), Options{Obs: sink}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != sink {
		t.Fatal("Result.Obs must be the injected sink")
	}
	// Every layer must have reported: rules, Glue, plan table, driver.
	seen := map[string]bool{}
	for _, e := range sink.Events() {
		seen[e.Name] = true
	}
	for _, want := range []string{
		obs.EvRule, obs.EvAltFired, obs.EvGlue, obs.EvVeneer,
		obs.EvPlanInsert, obs.EvPhase, obs.EvPair,
	} {
		if !seen[want] {
			t.Errorf("event stream missing %s (saw %v)", want, seen)
		}
	}
	// Metrics must agree with the stats counters.
	reg := sink.Registry()
	if got := reg.Counter("star_rule_refs_total").Value(); got != res.Stats.Star.RuleRefs {
		t.Errorf("star_rule_refs_total = %d, stats say %d", got, res.Stats.Star.RuleRefs)
	}
	if got := reg.Counter("glue_calls_total").Value(); got != res.Stats.Glue.Calls {
		t.Errorf("glue_calls_total = %d, stats say %d", got, res.Stats.Glue.Calls)
	}
	if got := reg.Counter("opt_pairs_total").Value(); got != res.Stats.Pairs {
		t.Errorf("opt_pairs_total = %d, stats say %d", got, res.Stats.Pairs)
	}
	if got := reg.Gauge("plantable_plans").Value(); got != res.Stats.PlansRetained {
		t.Errorf("plantable_plans = %d, stats say %d", got, res.Stats.PlansRetained)
	}
	if reg.Histogram("opt_elapsed_seconds").Count() != 1 {
		t.Error("opt_elapsed_seconds not observed")
	}
	// An injected sink also yields the reconstructed trace.
	if len(res.Trace) == 0 {
		t.Fatal("trace not reconstructed from the event stream")
	}
}

// TestConcurrentOptimizeSharedSink exercises the sink's concurrency safety:
// several optimizations report into one sink at once (run with -race).
func TestConcurrentOptimizeSharedSink(t *testing.T) {
	sink := obs.NewMetricsSink()
	const workers = 8
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		refs    int64
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := New(workload.EmpDept(), Options{Obs: sink}).Optimize(workload.Figure1Query())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstEr == nil {
					firstEr = err
				}
				return
			}
			refs += res.Stats.Star.RuleRefs
		}()
	}
	wg.Wait()
	if firstEr != nil {
		t.Fatal(firstEr)
	}
	if got := sink.Registry().Counter("star_rule_refs_total").Value(); got != refs {
		t.Errorf("aggregated star_rule_refs_total = %d, want %d", got, refs)
	}
	if sink.Registry().Histogram("opt_elapsed_seconds").Count() != workers {
		t.Errorf("opt_elapsed_seconds count = %d, want %d",
			sink.Registry().Histogram("opt_elapsed_seconds").Count(), workers)
	}
}

// TestDefaultSinkFallback: with no Options.Obs, optimizations report into
// obs.DefaultSink() when one is installed.
func TestDefaultSinkFallback(t *testing.T) {
	old := obs.DefaultSink()
	obs.SetDefault(obs.NewMetricsSink())
	defer obs.SetDefault(old)
	res, err := New(workload.EmpDept(), Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.DefaultSink().Registry().Counter("star_rule_refs_total").Value(); got != res.Stats.Star.RuleRefs {
		t.Errorf("default sink counter = %d, want %d", got, res.Stats.Star.RuleRefs)
	}
}

// TestTraceMatchesEngineCounters: the reconstructed trace's firing/rejection
// entries agree with the engine's counters.
func TestTraceMatchesEngineCounters(t *testing.T) {
	res, err := New(workload.EmpDept(), Options{Trace: true}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	var fired, rejected int64
	for _, e := range res.Trace {
		switch {
		case e.Rejected:
			rejected++
		case e.Alt > 0:
			fired++
		}
	}
	if fired != res.Stats.Star.AltsFired {
		t.Errorf("trace shows %d firings, stats say %d", fired, res.Stats.Star.AltsFired)
	}
	if rejected != res.Stats.Star.AltsRejected {
		t.Errorf("trace shows %d rejections, stats say %d", rejected, res.Stats.Star.AltsRejected)
	}
	_ = star.FormatTrace(res.Trace)
}
