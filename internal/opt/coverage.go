package opt

import (
	"sort"
	"strconv"
	"strings"

	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/star"
)

// emitCoverage closes one observed optimization with a coverage summary:
// one opt.alt.coverage event per alternative of the active repertoire (the
// whole alternative space, so never-exercised arms are visible in the
// stream) and one opt.veneer.coverage event per Glue operator seen, plus
// coverage_* counters in the sink's registry. Firing and rejection tallies
// come from the recorded event log; retained/pruned/winner attribution from
// the final plan table and the chosen plan, per Origin ("Rule#alt"). The
// tallies are a pure function of run state every parallelism level agrees
// on, so the emitted events are byte-identical across Parallelism levels.
//
// Metrics-only sinks drop the event log the attribution reads, so coverage
// is skipped for them (KeepsEvents) — use an event-keeping sink to collect
// coverage.
func emitCoverage(sink *obs.Sink, rules *star.RuleSet, res *Result) {
	if !sink.KeepsEvents() {
		return
	}

	altKey := func(rule string, alt int) string { return rule + "#" + strconv.Itoa(alt) }
	alts := map[string]*obs.AltCoverage{}
	var altOrder []string
	for _, name := range rules.Names() {
		r := rules.Get(name)
		for i := range r.Alts {
			k := altKey(name, i+1)
			alts[k] = &obs.AltCoverage{Rule: name, Alt: i + 1}
			altOrder = append(altOrder, k)
		}
	}
	veneers := map[string]*obs.VeneerCoverage{}
	veneer := func(op string) *obs.VeneerCoverage {
		v := veneers[op]
		if v == nil {
			v = &obs.VeneerCoverage{Op: op}
			veneers[op] = v
		}
		return v
	}

	// Event pass: firings and rejections per alternative, veneer
	// injections, the fingerprint->origin map offers recorded, and the
	// prune decisions to attribute afterwards.
	originOf := map[string]string{}
	var prunes []obs.Event
	for _, e := range sink.Events() {
		switch e.Name {
		case obs.EvAltFired:
			if c := alts[altKey(e.A1, int(e.N1))]; c != nil {
				c.Fired++
				c.Built += e.N2
			}
		case obs.EvAltRejected:
			if e.Kind != obs.KindInstant {
				continue
			}
			if c := alts[altKey(e.A1, int(e.N1))]; c != nil {
				c.Rejected++
			}
		case obs.EvVeneer:
			veneer(e.A1).Injected++
			originOf[e.A2] = "Glue"
		case obs.EvPlanOffer:
			if i := strings.IndexByte(e.A3, ' '); i > 0 {
				originOf[e.A2] = e.A3[:i]
			}
		case obs.EvPlanPrune:
			prunes = append(prunes, e)
		}
	}

	// Structure pass: every distinct plan node surviving in the final
	// table (or on the chosen plan) counts once toward its origin's
	// Retained; the chosen plan's derivation chain counts toward Winner.
	count := func(root *plan.Node, seen map[string]bool, alt func(*obs.AltCoverage), ven func(*obs.VeneerCoverage)) {
		var walk func(n *plan.Node)
		walk = func(n *plan.Node) {
			fp := n.Fingerprint()
			if seen[fp] {
				return
			}
			seen[fp] = true
			originOf[fp] = n.Origin
			if n.Origin == "Glue" {
				ven(veneer(string(n.Op)))
			} else if c := alts[n.Origin]; c != nil {
				alt(c)
			}
			for _, in := range n.Inputs {
				walk(in)
			}
		}
		walk(root)
	}
	retained := map[string]bool{}
	markRetained := func(c *obs.AltCoverage) { c.Retained++ }
	markRetainedV := func(v *obs.VeneerCoverage) { v.Retained++ }
	if res.Table != nil {
		res.Table.ForEach(func(_, _ string, p *plan.Node) { count(p, retained, markRetained, markRetainedV) })
	}
	if res.Best != nil {
		count(res.Best, retained, markRetained, markRetainedV)
		count(res.Best, map[string]bool{},
			func(c *obs.AltCoverage) { c.Winner++ },
			func(v *obs.VeneerCoverage) { v.Winner++ })
	}

	// Prune attribution: the victim's origin takes the hit, the
	// dominator's origin is named (Q: which alternative keeps beating
	// this one). Veneer victims have no alternative to charge.
	for _, e := range prunes {
		c := alts[originOf[e.A2]]
		if c == nil {
			continue
		}
		c.Pruned++
		dom := originOf[e.A3]
		if dom == "" {
			dom = "?"
		}
		if c.PrunedBy == nil {
			c.PrunedBy = map[string]int64{}
		}
		c.PrunedBy[dom]++
	}

	// Emit in repertoire definition order (then sorted veneer ops) and
	// publish the per-alternative counters — zero-valued ones included, so
	// aggregating registries expose the full series surface immediately.
	reg := sink.Registry()
	reg.Counter("coverage_runs_total").Add(1)
	for _, k := range altOrder {
		c := alts[k]
		sink.Emit(c.Event())
		labels := `{rule="` + c.Rule + `",alt="` + strconv.Itoa(c.Alt) + `"}`
		reg.Counter("coverage_alt_fired_total" + labels).Add(c.Fired)
		reg.Counter("coverage_alt_retained_total" + labels).Add(c.Retained)
		reg.Counter("coverage_alt_winner_total" + labels).Add(c.Winner)
	}
	ops := make([]string, 0, len(veneers))
	for op := range veneers {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		v := veneers[op]
		sink.Emit(v.Event())
		reg.Counter(`coverage_veneer_injected_total{op="` + op + `"}`).Add(v.Injected)
	}
}
