package opt

import (
	"testing"

	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/workload"
)

// TestArenaLifetimeOptimizeReleaseLoop is the arena safety harness: it runs
// optimize → Release → optimize many times with poison-on-reset enabled, so
// any plan pointer that survived Release without being detached reads a
// poisoned node and fails loudly (run under -race in tier-1). It pins the
// Release contract:
//
//   - Best stays usable after Release (it is detached to the heap first) and
//     its fingerprint never drifts across arena reuse;
//   - plans NOT detached really do die at Release (the poison is observed on
//     a deliberately-escaped pointer), proving the harness would catch a
//     serve/provenance/flight consumer holding plans past Release;
//   - the pooled arena is safe to reuse immediately by the next optimization.
func TestArenaLifetimeOptimizeReleaseLoop(t *testing.T) {
	arenaPoison = true
	defer func() { arenaPoison = false }()

	cat := workload.StarCatalog(4, 100000, 500)
	newG := func() *query.Graph { return workload.StarQuery(4) }

	var fp string
	var escaped *plan.Node // deliberately held across Release
	for i := 0; i < 100; i++ {
		par := 1 + i%3 // exercise serial and rank-parallel arenas alike
		res, err := New(cat, Options{Parallelism: par}).Optimize(newG())
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if escaped != nil && !escaped.Poisoned() {
			// The previous iteration's undetached pointer must be dead by
			// now: its arena was reset at Release and reused above.
			t.Fatalf("iteration %d: plan held across Release was not poisoned — escapes would go undetected", i)
		}
		got := res.Best.Fingerprint()
		if i == 0 {
			fp = got
		} else if got != fp {
			t.Fatalf("iteration %d: fingerprint %s, want %s", i, got, fp)
		}
		escaped = res.Best
		res.Release()
		if res.Best == escaped {
			t.Fatal("Release must detach Best, not alias the arena node")
		}
		// The detached Best survives the reset that just poisoned its
		// arena-resident original.
		assertAlive(t, i, res.Best)
		if res.Best.Fingerprint() != fp {
			t.Fatalf("iteration %d: detached fingerprint drifted after Release", i)
		}
		if res.Table != nil || res.Engine != nil {
			t.Fatal("Release must invalidate Table and Engine")
		}
		res.Release() // idempotent
	}
}

// assertAlive walks the detached plan checking no node is a recycled slot.
func assertAlive(t *testing.T, iter int, n *plan.Node) {
	t.Helper()
	if n == nil {
		return
	}
	if n.Poisoned() {
		t.Fatalf("iteration %d: detached plan contains a poisoned node — Detach missed it", iter)
	}
	for _, in := range n.Inputs {
		assertAlive(t, iter, in)
	}
}
