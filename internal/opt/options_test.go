package opt

import (
	"strings"
	"testing"

	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/star"
	"stars/internal/workload"
)

func TestSingleTableQuery(t *testing.T) {
	cat := workload.EmpDept()
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "DEPT", Table: "DEPT"}},
		Preds:  expr.NewPredSet(),
		Select: []expr.ColID{{Table: "DEPT", Col: "MGR"}},
	}
	res, err := New(cat, Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Op != plan.OpAccess {
		t.Fatalf("single-table best:\n%s", plan.Explain(res.Best))
	}
	if res.Stats.Pairs != 0 {
		t.Error("no join pairs for one table")
	}
}

func TestOrderByAddsRootRequirement(t *testing.T) {
	cat := workload.EmpDept()
	g := workload.Figure1Query()
	g.OrderBy = []expr.ColID{{Table: "EMP", Col: "NAME"}}
	res, err := New(cat, Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OrderSatisfies(res.Best.Props.Order, g.OrderBy) {
		t.Fatalf("ORDER BY unmet:\n%s", plan.Explain(res.Best))
	}
	// An order the data naturally has does not force a SORT; this one must.
	if !strings.Contains(plan.Explain(res.Best), "SORT") {
		t.Fatalf("expected a SORT veneer:\n%s", plan.Explain(res.Best))
	}
}

func TestDistributedRootComesHome(t *testing.T) {
	cat := workload.EmpDept()
	cat.Sites = []string{"HQ", "NY"}
	cat.QuerySite = "HQ"
	cat.Table("EMP").Site = "NY"
	res, err := New(cat, Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Props.Site != "HQ" {
		t.Fatalf("result must be delivered at the query site, got %q", res.Best.Props.Site)
	}
}

func TestDisconnectedGraphNeedsCartesian(t *testing.T) {
	cat := workload.ChainCatalog(2, 10, 20)
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "T1", Table: "T1"}, {Name: "T2", Table: "T2"}},
		Preds:  expr.NewPredSet(), // no join predicate at all
		Select: []expr.ColID{{Table: "T1", Col: "ID"}},
	}
	// Even without the option, the final join admits a Cartesian pair so
	// the query still plans (Section 2.3's fallback).
	res, err := New(cat, Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Props.Card != 200 {
		t.Errorf("cross product card = %v", res.Best.Props.Card)
	}
}

func TestUnknownQuantifierFails(t *testing.T) {
	cat := workload.EmpDept()
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "X", Table: "NOPE"}},
		Preds:  expr.NewPredSet(),
	}
	if _, err := New(cat, Options{}).Optimize(g); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestBadRulesFailValidation(t *testing.T) {
	rules, err := star.ParseRules(`star AccessRoot(T, C, P) = Bogus(T)`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(workload.EmpDept(), Options{Rules: rules}).Optimize(workload.Figure1Query())
	if err == nil || !strings.Contains(err.Error(), "Bogus") {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinRootOverride(t *testing.T) {
	// A custom root that skips permutation: still correct, just fewer
	// alternatives.
	text := star.DefaultRuleText + `
star OneWayJoin(T1, T2, P) = SitedJoin(T1, T2, P)
`
	rules, err := star.ParseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(workload.EmpDept(), Options{Rules: rules, JoinRoot: "OneWayJoin"}).
		Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(workload.EmpDept(), Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Props.Cost.Total < full.Best.Props.Cost.Total*0.999 {
		t.Error("a restricted root cannot beat the full repertoire")
	}
}

func TestTraceIsCaptured(t *testing.T) {
	res, err := New(workload.EmpDept(), Options{Trace: true}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace empty")
	}
	text := star.FormatTrace(res.Trace)
	for _, want := range []string{"JoinRoot", "JMeth", "AccessRoot"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

func TestStatsArepopulated(t *testing.T) {
	res, err := New(workload.EmpDept(), Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Star.RuleRefs == 0 || s.Glue.Calls == 0 || s.Pairs != 1 ||
		s.Subsets != 1 || s.PlansRetained == 0 || s.Elapsed <= 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEveryPredicateApplied(t *testing.T) {
	// The chosen plan must apply every query predicate exactly where the
	// rules say; none may be dropped.
	for n := 2; n <= 5; n++ {
		cat := workload.ChainCatalog(n, 300, 100, 50, 200, 80)
		g := workload.ChainQuery(n)
		res, err := New(cat, Options{}).Optimize(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range g.Preds.Slice() {
			if !res.Best.Props.Preds().Contains(p) {
				t.Fatalf("n=%d: predicate %s not applied:\n%s", n, p, plan.Explain(res.Best))
			}
		}
	}
}

func TestTIDSortAlternativeWins(t *testing.T) {
	// A large table with an unclustered, unselective index: fetching ten
	// thousand TIDs in random order costs one page each, while SORTing the
	// TIDs first makes the fetches sequential (Section 4's first omitted
	// STAR, included in the built-in repertoire).
	cat := workload.ChainCatalog(1, 500000)
	// Make the indexed column unselective (10k matches) so random fetches
	// dominate the plain index plan.
	cat.Table("T1").Column("J").NDV = 50
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "T1", Table: "T1"}},
		Preds: expr.NewPredSet(&expr.Cmp{Op: expr.EQ,
			L: expr.C("T1", "J"), R: &expr.Const{Val: datum.NewInt(3)}}),
		Select: []expr.ColID{{Table: "T1", Col: "ID"}, {Table: "T1", Col: "PAD"}},
	}
	res, err := New(cat, Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(res.Best)
	if !strings.Contains(out, plan.TIDCol) || !strings.Contains(out, "SORT") {
		t.Fatalf("expected the TID-sorted index plan to win:\n%s", out)
	}
}

func TestTooManyQuantifiers(t *testing.T) {
	g := &query.Graph{}
	cat := workload.ChainCatalog(2, 10)
	for i := 0; i < 31; i++ {
		g.Quants = append(g.Quants, query.Quantifier{Name: string(rune('a' + i)), Table: "T1"})
	}
	g.Preds = expr.NewPredSet()
	if _, err := New(cat, Options{}).Optimize(g); err == nil {
		t.Fatal("31 quantifiers must be rejected")
	}
}
