package opt

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"stars/internal/catalog"
	"stars/internal/expr"
	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/workload"
)

// tableSignature renders the retained plan-table population as a sorted
// multiset of (tables, preds, fingerprint) lines — the strongest practical
// statement of "these two runs kept the same plans".
func tableSignature(res *Result) string {
	var lines []string
	res.Table.ForEach(func(tk, pk string, p *plan.Node) {
		lines = append(lines, tk+" | "+pk+" | "+p.Fingerprint())
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// counters strips the wall-clock field so Stats compares with ==.
func counters(res *Result) Stats {
	s := res.Stats
	s.Elapsed = 0
	return s
}

// eventLog renders the deterministic fields of the sink's event stream in
// order. Wall-clock offsets are excluded; sequence numbers, span links, and
// all payloads must match exactly between runs.
func eventLog(sink *obs.Sink) []string {
	events := sink.Events()
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = fmt.Sprintf("%d %d %s %d|%s|%s|%s|%d|%d|%.4f|%.4f",
			e.Seq, e.Span, e.Name, e.Kind, e.A1, e.A2, e.A3, e.N1, e.N2, e.F1, e.F2)
	}
	return out
}

// optimizeAt runs one optimization of its own freshly-built graph at the
// given parallelism, with a private sink.
func optimizeAt(t *testing.T, cat *catalog.Catalog, mkGraph func() *query.Graph, opts Options, par int) (*Result, *obs.Sink) {
	t.Helper()
	opts.Parallelism = par
	opts.Obs = obs.NewSink()
	res, err := New(cat, opts).Optimize(mkGraph())
	if err != nil {
		t.Fatalf("parallelism %d: %v", par, err)
	}
	return res, opts.Obs
}

// assertEquivalent asserts the full determinism contract between a serial
// (Parallelism 1) and a parallel (Parallelism 8) run: identical best-plan
// fingerprint and cost, identical retained plan table, identical effort
// counters, identical merged metrics, and an identical event stream.
func assertEquivalent(t *testing.T, cat *catalog.Catalog, mkGraph func() *query.Graph, opts Options) {
	t.Helper()
	serial, serialSink := optimizeAt(t, cat, mkGraph, opts, 1)
	par, parSink := optimizeAt(t, cat, mkGraph, opts, 8)

	if s, p := serial.Best.Fingerprint(), par.Best.Fingerprint(); s != p {
		t.Errorf("best-plan fingerprint: serial %s != parallel %s\nserial:\n%s\nparallel:\n%s",
			s, p, plan.Explain(serial.Best), plan.Explain(par.Best))
	}
	if s, p := serial.Best.Props.Cost.Total, par.Best.Props.Cost.Total; s != p {
		t.Errorf("best-plan cost: serial %v != parallel %v", s, p)
	}
	if s, p := tableSignature(serial), tableSignature(par); s != p {
		t.Errorf("plan-table contents diverge\nserial:\n%s\n\nparallel:\n%s", s, p)
	}
	if s, p := counters(serial), counters(par); s != p {
		t.Errorf("counters diverge\nserial:   %+v\nparallel: %+v", s, p)
	}
	if s, p := serialSink.Registry().Counters(), parSink.Registry().Counters(); !reflect.DeepEqual(s, p) {
		t.Errorf("merged metrics diverge\nserial:   %v\nparallel: %v", s, p)
	}
	sl, pl := eventLog(serialSink), eventLog(parSink)
	if len(sl) != len(pl) {
		t.Fatalf("event counts diverge: serial %d, parallel %d", len(sl), len(pl))
	}
	for i := range sl {
		if sl[i] != pl[i] {
			t.Fatalf("event %d diverges\nserial:   %s\nparallel: %s", i, sl[i], pl[i])
		}
	}

	// The coverage summary is part of the contract too: every observed run
	// closes with one opt.alt.coverage event per alternative of the
	// repertoire, and the parsed tallies — not just the raw event text —
	// must agree across parallelism levels.
	sc, pc := coverageTallies(t, serialSink), coverageTallies(t, parSink)
	if len(sc) == 0 {
		t.Fatalf("no %s events in the serial run's stream", obs.EvAltCoverage)
	}
	if !reflect.DeepEqual(sc, pc) {
		t.Errorf("coverage tallies diverge\nserial:   %+v\nparallel: %+v", sc, pc)
	}
}

// coverageTallies parses the run's opt.alt.coverage summary events.
func coverageTallies(t *testing.T, sink *obs.Sink) []obs.AltCoverage {
	t.Helper()
	var out []obs.AltCoverage
	for _, e := range sink.Events() {
		if e.Name != obs.EvAltCoverage {
			continue
		}
		c, ok := obs.ParseAltCoverage(e)
		if !ok {
			t.Fatalf("unparseable %s event: %+v", obs.EvAltCoverage, e)
		}
		out = append(out, c)
	}
	return out
}

func TestParallelMatchesSerialChain(t *testing.T) {
	cat := workload.ChainCatalog(5, 300, 100, 50, 200, 80)
	assertEquivalent(t, cat, func() *query.Graph { return workload.ChainQuery(5) }, Options{})
}

func TestParallelMatchesSerialStar(t *testing.T) {
	cat := workload.StarCatalog(5, 100000, 500)
	assertEquivalent(t, cat, func() *query.Graph { return workload.StarQuery(5) }, Options{})
}

func TestParallelMatchesSerialDistributed(t *testing.T) {
	cat := workload.ChainCatalog(5, 300, 100, 50, 200, 80)
	cat.Sites = []string{"HQ", "NY", "LA"}
	cat.QuerySite = "HQ"
	cat.Table("T2").Site = "NY"
	cat.Table("T4").Site = "LA"
	assertEquivalent(t, cat, func() *query.Graph { return workload.ChainQuery(5) }, Options{})
}

func TestParallelMatchesSerialNoCompositeInners(t *testing.T) {
	cat := workload.ChainCatalog(6, 300, 100, 50, 200, 80, 120)
	assertEquivalent(t, cat, func() *query.Graph { return workload.ChainQuery(6) },
		Options{NoCompositeInners: true})
}

func TestParallelMatchesSerialCartesianProducts(t *testing.T) {
	cat := workload.ChainCatalog(4, 40, 30, 20, 10)
	assertEquivalent(t, cat, func() *query.Graph { return workload.ChainQuery(4) },
		Options{CartesianProducts: true})
}

func TestParallelMatchesSerialKeepAllGlue(t *testing.T) {
	cat := workload.ChainCatalog(4, 300, 100, 50, 200)
	assertEquivalent(t, cat, func() *query.Graph { return workload.ChainQuery(4) },
		Options{KeepAllGlue: true})
}

func TestParallelMatchesSerialDisablePruning(t *testing.T) {
	cat := workload.ChainCatalog(4, 300, 100, 50, 200)
	assertEquivalent(t, cat, func() *query.Graph { return workload.ChainQuery(4) },
		Options{DisablePruning: true})
}

// TestParallelDisconnectedFallback exercises the Cartesian fallback at the
// final join under parallel enumeration: a query with no join predicates
// still plans, and plans identically at every parallelism level. (With
// CartesianProducts on, the same holds for a larger disconnected graph.)
func TestParallelDisconnectedFallback(t *testing.T) {
	cat := workload.ChainCatalog(3, 10, 20, 30)
	mkTwo := func() *query.Graph {
		return &query.Graph{
			Quants: []query.Quantifier{{Name: "T1", Table: "T1"}, {Name: "T2", Table: "T2"}},
			Preds:  expr.NewPredSet(),
			Select: []expr.ColID{{Table: "T1", Col: "ID"}},
		}
	}
	assertEquivalent(t, cat, mkTwo, Options{})
	res, _ := optimizeAt(t, cat, mkTwo, Options{}, 8)
	if res.Best.Props.Card != 10*20 {
		t.Errorf("cross-product card = %v", res.Best.Props.Card)
	}
	mkThree := func() *query.Graph {
		return &query.Graph{
			Quants: []query.Quantifier{
				{Name: "T1", Table: "T1"}, {Name: "T2", Table: "T2"}, {Name: "T3", Table: "T3"},
			},
			Preds:  expr.NewPredSet(),
			Select: []expr.ColID{{Table: "T1", Col: "ID"}},
		}
	}
	assertEquivalent(t, cat, mkThree, Options{CartesianProducts: true})
}

// TestParallelRunsAreReproducible runs the parallel configuration several
// times: scheduling may differ, results must not.
func TestParallelRunsAreReproducible(t *testing.T) {
	cat := workload.StarCatalog(5, 100000, 500)
	first, firstSink := optimizeAt(t, cat, func() *query.Graph { return workload.StarQuery(5) }, Options{}, 8)
	for i := 0; i < 4; i++ {
		next, nextSink := optimizeAt(t, cat, func() *query.Graph { return workload.StarQuery(5) }, Options{}, 8)
		if first.Best.Fingerprint() != next.Best.Fingerprint() {
			t.Fatalf("run %d: best fingerprint changed", i)
		}
		if tableSignature(first) != tableSignature(next) {
			t.Fatalf("run %d: plan table changed", i)
		}
		if counters(first) != counters(next) {
			t.Fatalf("run %d: counters changed", i)
		}
		fl, nl := eventLog(firstSink), eventLog(nextSink)
		if !reflect.DeepEqual(fl, nl) {
			t.Fatalf("run %d: event stream changed", i)
		}
	}
}

// TestParallelismResolution covers the Options → worker-count mapping,
// including the process-wide default knob.
func TestParallelismResolution(t *testing.T) {
	if got := resolveParallelism(3); got != 3 {
		t.Errorf("explicit parallelism: got %d", got)
	}
	SetDefaultParallelism(5)
	if got := resolveParallelism(0); got != 5 {
		t.Errorf("default parallelism: got %d", got)
	}
	SetDefaultParallelism(0)
	if got := resolveParallelism(0); got < 1 {
		t.Errorf("GOMAXPROCS fallback: got %d", got)
	}
}

// TestMaskCacheSparseMatchesDense pins the on-demand (n > denseMaskLimit)
// translation to the precomputed one.
func TestMaskCacheSparseMatchesDense(t *testing.T) {
	g := workload.ChainQuery(10)
	dense := newMaskCache(g)
	if dense.sets == nil {
		t.Fatal("10-quantifier cache should be dense")
	}
	sparse := &maskCache{n: dense.n, names: dense.names}
	full := uint32(1)<<uint(dense.n) - 1
	for mask := uint32(1); mask <= full; mask += 7 {
		if !dense.set(mask).Equal(sparse.set(mask)) {
			t.Fatalf("mask %b: set diverges", mask)
		}
		if dense.key(mask) != sparse.key(mask) {
			t.Fatalf("mask %b: key diverges", mask)
		}
	}
	big := &query.Graph{}
	for i := 0; i < denseMaskLimit+1; i++ {
		big.Quants = append(big.Quants, query.Quantifier{Name: fmt.Sprintf("Q%02d", i), Table: "T"})
	}
	if mc := newMaskCache(big); mc.sets != nil {
		t.Errorf("%d-quantifier cache should be sparse", denseMaskLimit+1)
	}
}

// TestEnumerationHotPathAllocs pins the allocation behaviour the tentpole
// bought: mask translation is alloc-free on the dense cache, and the
// observability guard costs nothing when the sink is off.
func TestEnumerationHotPathAllocs(t *testing.T) {
	mc := newMaskCache(workload.ChainQuery(8))
	var sink *obs.Sink
	var got string
	if n := testing.AllocsPerRun(1000, func() {
		_ = mc.set(0b10110101)
		got = mc.key(0b10110101)
	}); n != 0 {
		t.Errorf("dense mask lookup allocates %.1f/op", n)
	}
	if got == "" {
		t.Fatal("empty key")
	}
	if n := testing.AllocsPerRun(1000, func() {
		if sink.Enabled() {
			sink.Emit(obs.Event{Name: obs.EvPair, A1: mc.key(0b11), A2: mc.key(0b100)})
		}
	}); n != 0 {
		t.Errorf("disabled-sink pair emission allocates %.1f/op", n)
	}
}
