// Package catalog models the system catalogs the optimizer reads: tables,
// columns with statistics, access paths (the paper's PATHS property), site
// placement for distributed queries, and storage-manager kinds (Section
// 4.5.2's TableAccess flavors). Catalogs are plain data — they load from and
// store to JSON — because the paper's whole premise is that optimizer inputs
// are data, not code.
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"stars/internal/datum"
)

// StorageKind selects the storage manager for a table, which in turn selects
// the flavor of sequential ACCESS (Section 4.5.2, [LIND 87]).
type StorageKind string

// The supported storage-manager kinds.
const (
	// Heap is a physically-sequential pile of pages.
	Heap StorageKind = "heap"
	// BTreeStore keeps the table itself in a B-tree clustered on its
	// declared order.
	BTreeStore StorageKind = "btree"
)

// Column describes one column of a stored table together with the statistics
// the cost model's selectivity estimation uses.
type Column struct {
	// Name is the column name, unique within its table.
	Name string `json:"name"`
	// Type is the column's scalar kind.
	Type datum.Kind `json:"type"`
	// NDV is the number of distinct values (column cardinality); 0 means
	// unknown and estimation falls back to System-R defaults.
	NDV int64 `json:"ndv,omitempty"`
	// Lo and Hi bound the column's value range when known; they refine
	// range-predicate selectivity.
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
	// Width is the average encoded width in bytes; 0 defaults per type.
	Width int `json:"width,omitempty"`
	// Skew, when > 0, makes the workload generator draw this column's
	// values from a Zipf distribution with exponent 1+Skew instead of
	// uniformly; the catalog's NDV still bounds the domain. Skewed data
	// stresses the uniformity assumptions of System-R selectivity
	// estimation.
	Skew float64 `json:"skew,omitempty"`
}

// AvgWidth returns the column's average width in bytes, defaulting by type.
func (c *Column) AvgWidth() int {
	if c.Width > 0 {
		return c.Width
	}
	switch c.Type {
	case datum.KindInt, datum.KindFloat:
		return 8
	case datum.KindBool:
		return 1
	default:
		return 16
	}
}

// AccessPath describes an index: an ordered list of key columns over a table
// (the paper's "ordered list of columns" PATHS element). Every index stores
// TIDs, so an index-only ACCESS yields the key columns plus the TID
// pseudo-column.
type AccessPath struct {
	// Name is the index name, unique within the catalog.
	Name string `json:"name"`
	// Table is the base table the index is defined on.
	Table string `json:"table"`
	// Cols is the ordered key-column list.
	Cols []string `json:"cols"`
	// Unique marks the index as enforcing key uniqueness.
	Unique bool `json:"unique,omitempty"`
	// Clustered marks the index as clustering the base table, making TID
	// fetches through it sequential rather than random.
	Clustered bool `json:"clustered,omitempty"`
	// Pages is the estimated leaf-page count; 0 derives from table stats.
	Pages int64 `json:"pages,omitempty"`
}

// Table describes a stored table: schema, statistics, placement, and its
// access paths.
type Table struct {
	// Name is the table name, unique within the catalog.
	Name string `json:"name"`
	// Site is where the table is stored ("" means the query site).
	Site string `json:"site,omitempty"`
	// StMgr is the storage-manager kind; empty defaults to Heap.
	StMgr StorageKind `json:"stmgr,omitempty"`
	// Cols is the ordered column list.
	Cols []*Column `json:"cols"`
	// Card is the estimated row count.
	Card int64 `json:"card"`
	// Pages is the estimated data-page count; 0 derives from Card and row
	// width.
	Pages int64 `json:"pages,omitempty"`
	// Order lists the columns the stored tuples are physically ordered by,
	// if any ("unknown" order is the empty list, as in Section 3.1).
	Order []string `json:"order,omitempty"`
	// Paths are the access paths defined on the table.
	Paths []*AccessPath `json:"paths,omitempty"`
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColNames returns the table's column names in declaration order.
func (t *Table) ColNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// RowWidth returns the average row width in bytes.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Cols {
		w += c.AvgWidth()
	}
	if w == 0 {
		w = 1
	}
	return w
}

// PageCount returns the data-page estimate, deriving it from cardinality and
// row width when the catalog does not record it.
func (t *Table) PageCount() int64 {
	if t.Pages > 0 {
		return t.Pages
	}
	perPage := int64(PageSize / t.RowWidth())
	if perPage < 1 {
		perPage = 1
	}
	p := (t.Card + perPage - 1) / perPage
	if p < 1 {
		p = 1
	}
	return p
}

// StorageKindOrDefault returns the storage manager, defaulting to Heap.
func (t *Table) StorageKindOrDefault() StorageKind {
	if t.StMgr == "" {
		return Heap
	}
	return t.StMgr
}

// PageSize is the byte capacity of one storage page, shared by the catalog's
// derived statistics, the storage engine, and the cost model.
const PageSize = 4096

// BufferPages is the per-site buffer-pool capacity in pages, shared by the
// storage engine's buffer simulation and the cost model's rescan accounting:
// structures that fit are re-read from memory, which is what makes repeated
// nested-loop probes of a small temp index cheap (Section 4.5.3's economics).
const BufferPages = 1024

// Catalog is the root of the system catalogs.
type Catalog struct {
	// Tables maps table name to its descriptor.
	Tables map[string]*Table `json:"tables"`
	// Sites lists the known sites; the empty catalog is single-site.
	Sites []string `json:"sites,omitempty"`
	// QuerySite is the site queries originate at; "" on single-site
	// catalogs.
	QuerySite string `json:"querySite,omitempty"`
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{Tables: map[string]*Table{}}
}

// AddTable registers t, replacing any previous table of the same name.
func (c *Catalog) AddTable(t *Table) *Catalog {
	c.Tables[t.Name] = t
	return c
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.Tables[name] }

// TableNames returns the catalog's table names, sorted.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.Tables))
	for n := range c.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Path returns the named access path and its table, or nils.
func (c *Catalog) Path(name string) (*AccessPath, *Table) {
	for _, t := range c.Tables {
		for _, p := range t.Paths {
			if p.Name == name {
				return p, t
			}
		}
	}
	return nil, nil
}

// SiteOf returns the site a table is stored at, defaulting to the query site.
func (c *Catalog) SiteOf(table string) string {
	t := c.Tables[table]
	if t == nil || t.Site == "" {
		return c.QuerySite
	}
	return t.Site
}

// AllSites returns σ of Section 4.2: the set of sites at which tables of the
// query are stored, plus the query site, for the given table names. On a
// single-site catalog it returns the query site alone.
func (c *Catalog) AllSites(tables []string) []string {
	seen := map[string]bool{c.QuerySite: true}
	for _, tn := range tables {
		seen[c.SiteOf(tn)] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// LocalQuery reports whether every listed table is stored at the query site
// — the guard on Section 4.2's PermutedJoin STAR.
func (c *Catalog) LocalQuery(tables []string) bool {
	for _, tn := range tables {
		if c.SiteOf(tn) != c.QuerySite {
			return false
		}
	}
	return true
}

// Validate checks internal consistency: column references in orders and
// paths resolve, cardinalities are non-negative, path tables exist.
func (c *Catalog) Validate() error {
	for name, t := range c.Tables {
		if t.Name != name {
			return fmt.Errorf("catalog: table map key %q != table name %q", name, t.Name)
		}
		if len(t.Cols) == 0 {
			return fmt.Errorf("catalog: table %q has no columns", name)
		}
		if t.Card < 0 {
			return fmt.Errorf("catalog: table %q has negative cardinality", name)
		}
		seen := map[string]bool{}
		for _, col := range t.Cols {
			if seen[col.Name] {
				return fmt.Errorf("catalog: table %q duplicates column %q", name, col.Name)
			}
			seen[col.Name] = true
		}
		for _, oc := range t.Order {
			if t.Column(oc) == nil {
				return fmt.Errorf("catalog: table %q order column %q unknown", name, oc)
			}
		}
		pathNames := map[string]bool{}
		for _, p := range t.Paths {
			if p.Table != t.Name {
				return fmt.Errorf("catalog: path %q on table %q claims table %q", p.Name, name, p.Table)
			}
			if pathNames[p.Name] {
				return fmt.Errorf("catalog: duplicate path name %q", p.Name)
			}
			pathNames[p.Name] = true
			if len(p.Cols) == 0 {
				return fmt.Errorf("catalog: path %q has no key columns", p.Name)
			}
			for _, pc := range p.Cols {
				if t.Column(pc) == nil {
					return fmt.Errorf("catalog: path %q key column %q unknown in table %q", p.Name, pc, name)
				}
			}
		}
	}
	return nil
}

// MarshalJSONIndent renders the catalog as pretty-printed JSON.
func (c *Catalog) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Save writes the catalog to a JSON file.
func (c *Catalog) Save(path string) error {
	b, err := c.MarshalJSONIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a catalog from a JSON file and validates it.
func Load(path string) (*Catalog, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(b)
}

// Parse decodes a catalog from JSON bytes and validates it.
func Parse(b []byte) (*Catalog, error) {
	c := New()
	if err := json.Unmarshal(b, c); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if c.Tables == nil {
		c.Tables = map[string]*Table{}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
