package catalog

import (
	"strings"
	"testing"

	"stars/internal/datum"
)

func demo() *Catalog {
	cat := New()
	cat.Sites = []string{"A", "B"}
	cat.QuerySite = "A"
	cat.AddTable(&Table{
		Name: "T", Site: "B",
		Cols: []*Column{
			{Name: "X", Type: datum.KindInt, NDV: 100},
			{Name: "S", Type: datum.KindString, Width: 20},
		},
		Card:  1000,
		Order: []string{"X"},
		Paths: []*AccessPath{{Name: "TX", Table: "T", Cols: []string{"X"}}},
	})
	cat.AddTable(&Table{
		Name: "U",
		Cols: []*Column{{Name: "Y", Type: datum.KindInt}},
		Card: 10,
	})
	return cat
}

func TestValidateOK(t *testing.T) {
	if err := demo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		wreck func(*Catalog)
		want  string
	}{
		{"no columns", func(c *Catalog) { c.Table("T").Cols = nil }, "no columns"},
		{"negative card", func(c *Catalog) { c.Table("T").Card = -1 }, "negative"},
		{"dup column", func(c *Catalog) {
			tb := c.Table("T")
			tb.Cols = append(tb.Cols, &Column{Name: "X"})
		}, "duplicates column"},
		{"bad order col", func(c *Catalog) { c.Table("T").Order = []string{"NOPE"} }, "order column"},
		{"path on wrong table", func(c *Catalog) { c.Table("T").Paths[0].Table = "U" }, "claims table"},
		{"path bad col", func(c *Catalog) { c.Table("T").Paths[0].Cols = []string{"NOPE"} }, "key column"},
		{"path no cols", func(c *Catalog) { c.Table("T").Paths[0].Cols = nil }, "no key columns"},
		{"map key mismatch", func(c *Catalog) { c.Tables["Z"] = c.Table("T") }, "map key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := demo()
			tc.wreck(c)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := demo()
	b, err := c.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Tables) != 2 || c2.QuerySite != "A" {
		t.Fatalf("round trip lost data: %+v", c2)
	}
	tb := c2.Table("T")
	if tb.Card != 1000 || tb.Site != "B" || len(tb.Paths) != 1 || tb.Paths[0].Cols[0] != "X" {
		t.Fatalf("table T mangled: %+v", tb)
	}
	if tb.Column("S").AvgWidth() != 20 {
		t.Error("column width lost")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"tables":{"T":{"name":"T","cols":[],"card":1}}}`)); err == nil {
		t.Fatal("columnless table must fail validation")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestDerivedStats(t *testing.T) {
	tb := demo().Table("T")
	if got := tb.RowWidth(); got != 28 {
		t.Errorf("row width = %d, want 28", got)
	}
	// 4096/28 = 146 rows per page; 1000 rows -> 7 pages.
	if got := tb.PageCount(); got != 7 {
		t.Errorf("pages = %d, want 7", got)
	}
	tb.Pages = 99
	if tb.PageCount() != 99 {
		t.Error("explicit page count must win")
	}
	if demo().Table("U").PageCount() < 1 {
		t.Error("page count has a floor of 1")
	}
}

func TestAvgWidthDefaults(t *testing.T) {
	cases := map[datum.Kind]int{
		datum.KindInt: 8, datum.KindFloat: 8, datum.KindBool: 1, datum.KindString: 16,
	}
	for k, want := range cases {
		c := &Column{Type: k}
		if c.AvgWidth() != want {
			t.Errorf("%s width default = %d, want %d", k, c.AvgWidth(), want)
		}
	}
}

func TestSiteHelpers(t *testing.T) {
	c := demo()
	if c.SiteOf("T") != "B" {
		t.Error("T is at B")
	}
	if c.SiteOf("U") != "A" {
		t.Error("U defaults to the query site")
	}
	if c.SiteOf("missing") != "A" {
		t.Error("unknown tables default to the query site")
	}
	sites := c.AllSites([]string{"T", "U"})
	if len(sites) != 2 || sites[0] != "A" || sites[1] != "B" {
		t.Errorf("AllSites = %v", sites)
	}
	if c.LocalQuery([]string{"T"}) {
		t.Error("T is remote")
	}
	if !c.LocalQuery([]string{"U"}) {
		t.Error("U is local")
	}
}

func TestPathLookup(t *testing.T) {
	c := demo()
	p, tb := c.Path("TX")
	if p == nil || tb.Name != "T" {
		t.Fatal("path TX must resolve")
	}
	if p2, _ := c.Path("missing"); p2 != nil {
		t.Fatal("unknown path must be nil")
	}
}

func TestTableNamesSorted(t *testing.T) {
	got := demo().TableNames()
	if len(got) != 2 || got[0] != "T" || got[1] != "U" {
		t.Errorf("names = %v", got)
	}
}

func TestStorageKindDefault(t *testing.T) {
	tb := &Table{}
	if tb.StorageKindOrDefault() != Heap {
		t.Error("default storage kind is heap")
	}
	tb.StMgr = BTreeStore
	if tb.StorageKindOrDefault() != BTreeStore {
		t.Error("explicit kind wins")
	}
}
