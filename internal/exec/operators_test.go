package exec_test

import (
	"reflect"
	"testing"

	"stars/internal/datum"
	"stars/internal/exec"
	"stars/internal/expr"
	"stars/internal/opt"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/storage"
	"stars/internal/workload"
)

func TestOrderByExecutesSorted(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	g := workload.Figure1Query()
	g.OrderBy = []expr.ColID{{Table: "EMP", Col: "NAME"}}
	res, err := opt.New(cat, opt.Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	er, err := exec.NewRuntime(cluster, cat).Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	pos := -1
	for i, c := range er.Schema {
		if c == (expr.ColID{Table: "EMP", Col: "NAME"}) {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("NAME not in output schema")
	}
	for i := 1; i < len(er.Rows); i++ {
		if er.Rows[i][pos].Less(er.Rows[i-1][pos]) {
			t.Fatalf("row %d out of order", i)
		}
	}
}

func TestDistributedExecutionShipsAndAgrees(t *testing.T) {
	cat := workload.EmpDept()
	cat.Sites = []string{"HQ", "NY", "SJ"}
	cat.QuerySite = "HQ"
	cat.Table("DEPT").Site = "NY"
	cat.Table("EMP").Site = "SJ"
	cluster := storage.NewCluster("HQ", "NY", "SJ")
	workload.PopulateEmpDept(cluster, cat, 2)
	g := workload.Figure1Query()
	res, err := opt.New(cat, opt.Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	er, err := exec.NewRuntime(cluster, cat).Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if er.Stats.Messages == 0 || er.Stats.BytesShipped == 0 {
		t.Error("distributed plan must ship")
	}
	want := workload.Oracle(cluster, cat, g)
	got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed result mismatch: %d vs %d rows", len(got), len(want))
	}
}

func TestIndexRangeProbe(t *testing.T) {
	// A range predicate on an indexed column must execute through
	// ScanRange and agree with the oracle.
	cat := workload.ChainCatalog(1, 2000)
	cluster := storage.NewCluster()
	workload.Populate(cluster, cat, 6)
	g := &query.Graph{
		Quants: []query.Quantifier{{Name: "T1", Table: "T1"}},
		Preds: expr.NewPredSet(
			&expr.Cmp{Op: expr.LT, L: expr.C("T1", "J"), R: &expr.Const{Val: datum.NewInt(20)}},
		),
		Select: []expr.ColID{{Table: "T1", Col: "ID"}, {Table: "T1", Col: "J"}},
	}
	res, err := opt.New(cat, opt.Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	er, err := exec.NewRuntime(cluster, cat).Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Oracle(cluster, cat, g)
	got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("range query mismatch: %d vs %d", len(got), len(want))
	}
}

func TestNullJoinKeysNeverMatch(t *testing.T) {
	// Hand-built data with NULL join keys: no join method may match them.
	cat := workload.ChainCatalog(2, 4, 4)
	cluster := storage.NewCluster()
	st := cluster.Store("")
	t1 := st.CreateTable("T1", []string{"ID", "J", "K", "PAD"}, 32)
	t2 := st.CreateTable("T2", []string{"ID", "J", "K", "PAD"}, 32)
	pad := datum.NewString("p")
	t1.Heap.Insert(datum.Row{datum.NewInt(1), datum.NewInt(0), datum.Null, pad}, nil)
	t1.Heap.Insert(datum.Row{datum.NewInt(2), datum.NewInt(0), datum.NewInt(7), pad}, nil)
	t2.Heap.Insert(datum.Row{datum.NewInt(10), datum.Null, datum.NewInt(0), pad}, nil)
	t2.Heap.Insert(datum.Row{datum.NewInt(11), datum.NewInt(7), datum.NewInt(0), pad}, nil)

	g := workload.ChainQuery(2)
	// Run every retained alternative: NULL semantics must agree across
	// NL, MG, and HA.
	res, err := opt.New(cat, opt.Options{KeepAllGlue: true}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Oracle(cluster, cat, g)
	if len(want) != 1 {
		t.Fatalf("oracle = %v (only 2–11 matches)", want)
	}
	rt := exec.NewRuntime(cluster, cat)
	for _, p := range res.Table.Entry(g.TableSet()) {
		er, err := rt.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Flavor, err)
		}
		got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("NULL handling differs under %s:\n%s", p.Flavor, plan.Explain(p))
		}
	}
}

func TestRuntimeRejectsUnknownOp(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	rt := exec.NewRuntime(cluster, cat)
	n := &plan.Node{Op: plan.Op("MYSTERY")}
	if _, err := rt.Run(n); err == nil {
		t.Fatal("unknown op must fail")
	}
	if rt.Registered(plan.OpJoin) == false {
		t.Error("built-ins registered")
	}
}

func TestMissingDataFails(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster() // no data loaded
	res, err := opt.New(cat, opt.Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.NewRuntime(cluster, cat).Run(res.Best); err == nil {
		t.Fatal("executing without stored data must fail cleanly")
	}
}

func TestRepeatedRunsAreIndependent(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	res, err := opt.New(cat, opt.Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.NewRuntime(cluster, cat)
	a, err := rt.Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.RowsOut != b.Stats.RowsOut {
		t.Error("reruns must agree")
	}
	if a.Stats.IO.TotalPages() != b.Stats.IO.TotalPages() {
		t.Errorf("counters must reset between runs: %d vs %d",
			a.Stats.IO.TotalPages(), b.Stats.IO.TotalPages())
	}
}
