// Package exec is the query evaluator: it interprets a QEP — a DAG of
// LOLEPOPs — at run time against the storage engine, exactly the role the
// paper assigns the "query evaluator" that the grammar's terminals target.
//
// Execution uses the Iterator (Open/Next/Close) model. Nested-loop joins
// re-open their inner per outer tuple with the outer tuple's bindings
// pushed, which is how pushed-down join predicates (sideways information
// passing) become single-table predicates on the inner at run time.
//
// Like the cost model, the evaluator is extensible (Section 5): a Database
// Customizer registers a run-time routine per new LOLEPOP.
package exec

import (
	"fmt"
	"time"

	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/obs"
	"stars/internal/plan"
	"stars/internal/storage"
)

// Runtime holds what executions need: the stored data (per-site stores) and
// the catalog, plus the registry of operator implementations.
type Runtime struct {
	// Cluster is the per-site storage.
	Cluster *storage.Cluster
	// Cat is the catalog the plans were optimized against.
	Cat *catalog.Catalog
	// Obs, when enabled, receives an exec.run span per Run plus one
	// exec.op event per plan node (when CollectOpStats is also set), and
	// the run's resource counters as metrics. When nil, obs.DefaultSink() is
	// consulted, mirroring the optimizer's Options.Obs fallback.
	Obs *obs.Sink
	// CollectOpStats attributes rows/CPU/IO/messages to individual plan
	// nodes (Result.Ops) — the raw material of EXPLAIN ANALYZE. Off by
	// default: attribution snapshots counters around every operator call.
	CollectOpStats bool

	builders map[plan.Op]IterBuilder
}

// IterBuilder constructs the Iterator for one node kind. The children are
// not yet built; implementations call ec.build on inputs they consume as
// streams.
type IterBuilder func(ec *Ctx, n *plan.Node) (Iterator, error)

// NewRuntime builds a runtime with the built-in operator implementations.
func NewRuntime(cluster *storage.Cluster, cat *catalog.Catalog) *Runtime {
	rt := &Runtime{Cluster: cluster, Cat: cat, builders: map[plan.Op]IterBuilder{}}
	rt.Register(plan.OpAccess, buildAccess)
	rt.Register(plan.OpGet, buildGet)
	rt.Register(plan.OpSort, buildSort)
	rt.Register(plan.OpShip, buildShip)
	rt.Register(plan.OpStore, buildStore)
	rt.Register(plan.OpFilter, buildFilter)
	rt.Register(plan.OpBuildIndex, buildBuildIndex)
	rt.Register(plan.OpJoin, buildJoin)
	rt.Register(plan.OpUnion, buildUnion)
	rt.Register(plan.OpIndexAnd, buildIndexAnd)
	return rt
}

// Register installs (or replaces) the run-time routine for an Op — the
// Section 5 extension point.
func (rt *Runtime) Register(op plan.Op, b IterBuilder) { rt.builders[op] = b }

// Registered reports whether op has a run-time routine.
func (rt *Runtime) Registered(op plan.Op) bool { _, ok := rt.builders[op]; return ok }

// ExecStats reports what one execution actually did, for comparison against
// the optimizer's estimates (experiment E11, in the spirit of [MACK 86]).
type ExecStats struct {
	// IO aggregates page-level counters across all sites.
	IO storage.Counters
	// Messages and BytesShipped count SHIP traffic.
	Messages     int64
	BytesShipped int64
	// RowsOut is the result cardinality.
	RowsOut int64
	// CPUOps counts tuple-handling operations (rows moved through
	// operators), the executable analogue of the cost model's CPU term.
	CPUOps int64
}

// ActualCost converts the observed counters into the cost model's units so
// estimated and actual costs are directly comparable.
func (s ExecStats) ActualCost(w cost.Weights) float64 {
	return w.IO*float64(s.IO.TotalPages()) +
		w.CPU*float64(s.CPUOps) +
		w.Msg*float64(s.Messages) +
		w.Byte*float64(s.BytesShipped)
}

// Add accumulates another execution's counters (mirrors star.Stats.Add).
func (s *ExecStats) Add(o ExecStats) {
	s.IO.Add(o.IO)
	s.Messages += o.Messages
	s.BytesShipped += o.BytesShipped
	s.RowsOut += o.RowsOut
	s.CPUOps += o.CPUOps
}

// OpStats is one plan node's observed execution profile, inclusive of its
// subtree (like EXPLAIN ANALYZE's per-node actuals). Rows accumulate across
// re-opens, so a nested-loop inner reports total rows over all probes;
// Opens is the loop count.
type OpStats struct {
	// Opens counts Open calls (nested-loop inners re-open per outer row).
	Opens int64
	// Rows counts rows the operator produced, summed over all opens.
	Rows int64
	// CPUOps counts tuple-handling operations in the node's subtree.
	CPUOps int64
	// IO aggregates page-level counters attributed to the subtree.
	IO storage.Counters
	// Messages and BytesShipped count SHIP traffic in the subtree.
	Messages     int64
	BytesShipped int64
	// Elapsed is wall-clock time spent inside the subtree's iterators.
	Elapsed time.Duration
}

// ActualCost converts the node's observed counters into cost-model units.
func (s OpStats) ActualCost(w cost.Weights) float64 {
	return w.IO*float64(s.IO.TotalPages()) +
		w.CPU*float64(s.CPUOps) +
		w.Msg*float64(s.Messages) +
		w.Byte*float64(s.BytesShipped)
}

// Result is one execution's output.
type Result struct {
	// Schema names the output columns positionally.
	Schema []expr.ColID
	// Rows is the result set.
	Rows []datum.Row
	// Stats is the observed resource usage.
	Stats ExecStats
	// Ops holds per-node actuals when Runtime.CollectOpStats was set.
	Ops map[*plan.Node]*OpStats
}

// Run executes the plan and drains its output. Counters are measured from
// zero for this run (the cluster's counters are reset).
func (rt *Runtime) Run(root *plan.Node) (result *Result, err error) {
	rt.Cluster.ResetCounters()
	ec := &Ctx{rt: rt, temps: map[*plan.Node]*tempHandle{}}
	if rt.CollectOpStats {
		ec.ops = map[*plan.Node]*OpStats{}
	}
	sink := rt.Obs
	if sink == nil {
		sink = obs.DefaultSink()
	}
	var sp obs.Span
	if sink.Enabled() {
		sp = sink.StartSpan(obs.EvExecRun, string(root.Op), "", 0)
		defer func() {
			var rows int64
			if result != nil {
				rows = result.Stats.RowsOut
			}
			sp.End(rows)
		}()
	}
	it, err := ec.build(root)
	if err != nil {
		return nil, err
	}
	if err := it.Open(nil); err != nil {
		return nil, err
	}
	res := &Result{Schema: it.Schema(), Ops: ec.ops}
	for {
		row, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		res.Rows = append(res.Rows, row.Clone())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	res.Stats.IO = rt.Cluster.TotalCounters()
	res.Stats.Messages = rt.Cluster.Messages
	res.Stats.BytesShipped = rt.Cluster.BytesShipped
	res.Stats.RowsOut = int64(len(res.Rows))
	res.Stats.CPUOps = ec.cpuOps
	if sink.Enabled() {
		if ec.ops != nil {
			emitOpEvents(sink, root, ec.ops)
		}
		reg := sink.Registry()
		reg.Counter("exec_rows_total").Add(res.Stats.RowsOut)
		reg.Counter("exec_cpu_ops_total").Add(res.Stats.CPUOps)
		reg.Counter("exec_pages_total").Add(res.Stats.IO.TotalPages())
		reg.Counter("exec_messages_total").Add(res.Stats.Messages)
		reg.Counter("exec_bytes_shipped_total").Add(res.Stats.BytesShipped)
	}
	return res, nil
}

// emitOpEvents reports per-operator actuals in a deterministic pre-order
// walk of the executed plan (the ops map's iteration order is not stable),
// pairing each exec.op event with an exec.feedback event that closes the
// estimate-vs-actual loop: the node's fingerprint, the optimizer's estimated
// cardinality, the observed row count, and the resulting Q-error. Feedback
// consumers (the serve daemon's Q-error ledger) key on the fingerprint, so
// the same operator is recognizable across requests and processes.
func emitOpEvents(sink *obs.Sink, root *plan.Node, ops map[*plan.Node]*OpStats) {
	reg := sink.Registry()
	seen := map[*plan.Node]bool{}
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		if st := ops[n]; st != nil {
			sink.Emit(obs.Event{Name: obs.EvExecOp, A1: string(n.Op), A2: n.Table,
				N1: st.Rows, N2: st.IO.TotalPages()})
			var est float64
			if n.Props != nil {
				est = n.Props.Card
			}
			// A nested-loop inner's Rows sum over all opens; compare the
			// per-open average against the per-open estimate.
			act := float64(st.Rows)
			if st.Opens > 1 {
				act /= float64(st.Opens)
			}
			sink.Emit(obs.Event{Name: obs.EvExecFeedback, A1: string(n.Op), A2: n.Fingerprint(),
				N1: st.Rows, N2: st.Opens, F1: est, F2: plan.QError(est, act)})
			reg.Counter("qerror_observations_total").Add(1)
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
}

// Actuals adapts a Result's per-node stats to plan.ExplainAnalyze's lookup,
// translating observed counters into cost-model units under w.
func Actuals(res *Result, w cost.Weights) func(*plan.Node) (plan.Actual, bool) {
	return func(n *plan.Node) (plan.Actual, bool) {
		st, ok := res.Ops[n]
		if !ok {
			return plan.Actual{}, false
		}
		return plan.Actual{
			Rows:    st.Rows,
			Loops:   st.Opens,
			Cost:    st.ActualCost(w),
			Elapsed: st.Elapsed,
		}, true
	}
}

// Ctx is per-execution state: temp materializations are memoized so a
// nested-loop rescan reads the temp instead of rebuilding it.
type Ctx struct {
	rt     *Runtime
	temps  map[*plan.Node]*tempHandle
	cpuOps int64
	// ops, when non-nil, attributes actuals to plan nodes (CollectOpStats).
	ops map[*plan.Node]*OpStats
}

// tempHandle is a materialized temp: its storage and positional schema.
type tempHandle struct {
	td     *storage.TableData
	schema []expr.ColID
	site   string
}

// Iterator is the operator interface. Open may be called repeatedly (the
// nested-loop join re-opens its inner per outer tuple); outer carries the
// bindings of enclosing operators for per-probe predicate evaluation.
type Iterator interface {
	// Schema returns the positional output columns; valid before Open.
	Schema() []expr.ColID
	// Open (re)starts the stream under the given outer bindings.
	Open(outer expr.Binding) error
	// Next returns the next row; ok=false at end of stream.
	Next() (row datum.Row, ok bool, err error)
	// Close releases resources; the Iterator may be re-Opened after.
	Close() error
}

// build constructs the Iterator for a node via the registry, wrapping it for
// per-node attribution when CollectOpStats is on.
func (ec *Ctx) build(n *plan.Node) (Iterator, error) {
	b, ok := ec.rt.builders[n.Op]
	if !ok {
		return nil, fmt.Errorf("exec: no run-time routine registered for %s", n.Op)
	}
	it, err := b(ec, n)
	if err != nil || ec.ops == nil {
		return it, err
	}
	st := ec.ops[n]
	if st == nil {
		st = &OpStats{}
		ec.ops[n] = st
	}
	return &opIter{it: it, ec: ec, st: st}, nil
}

// opIter wraps an operator's Iterator, attributing each call's resource
// deltas — CPU ticks, page I/O, SHIP traffic, wall time — to the node's
// OpStats. Children are wrapped too and their calls nest inside the
// parent's, so every node's stats are inclusive of its subtree.
type opIter struct {
	it Iterator
	ec *Ctx
	st *OpStats
}

func (o *opIter) Schema() []expr.ColID { return o.it.Schema() }

// measure snapshots the execution's counters and returns a closure folding
// the deltas into the node's stats.
func (o *opIter) measure() func() {
	ec, cl := o.ec, o.ec.rt.Cluster
	t0 := time.Now()
	cpu0 := ec.cpuOps
	io0 := cl.TotalCounters()
	msg0, bytes0 := cl.Messages, cl.BytesShipped
	return func() {
		o.st.Elapsed += time.Since(t0)
		o.st.CPUOps += ec.cpuOps - cpu0
		o.st.IO.Add(cl.TotalCounters().Sub(io0))
		o.st.Messages += cl.Messages - msg0
		o.st.BytesShipped += cl.BytesShipped - bytes0
	}
}

func (o *opIter) Open(outer expr.Binding) error {
	o.st.Opens++
	done := o.measure()
	defer done()
	return o.it.Open(outer)
}

func (o *opIter) Next() (datum.Row, bool, error) {
	done := o.measure()
	defer done()
	row, ok, err := o.it.Next()
	if ok {
		o.st.Rows++
	}
	return row, ok, err
}

func (o *opIter) Close() error {
	done := o.measure()
	defer done()
	return o.it.Close()
}

// Build constructs the Iterator for an input node; extension run-time
// routines (Section 5) use it to build their children.
func (ec *Ctx) Build(n *plan.Node) (Iterator, error) { return ec.build(n) }

// Tick counts one tuple-handling operation toward the execution's CPU
// statistics; run-time routines call it once per row they produce.
func (ec *Ctx) Tick() { ec.cpuOps++ }

// Runtime returns the runtime (cluster + catalog) the execution runs on.
func (ec *Ctx) Runtime() *Runtime { return ec.rt }

// NewRowBinding builds a binding over a positional schema that defers
// unresolved columns to outer — the same chain built-in operators use.
func NewRowBinding(schema []expr.ColID, outer expr.Binding) *RowBinding {
	return &RowBinding{idx: schemaIndex(schema), outer: outer}
}

// SetRow points the binding at the current row.
func (b *RowBinding) SetRow(row datum.Row) { b.row = row }

// EvalPreds reports whether every predicate definitely holds under b.
func EvalPreds(preds []expr.Expr, b expr.Binding) bool { return evalPreds(preds, b) }

// schemaIndex maps columns to their positions.
func schemaIndex(schema []expr.ColID) map[expr.ColID]int {
	m := make(map[expr.ColID]int, len(schema))
	for i, c := range schema {
		m[c] = i
	}
	return m
}

// RowBinding resolves columns against one positional row, deferring to an
// outer binding for columns it does not carry (the sideways-information
// chain).
type RowBinding struct {
	idx   map[expr.ColID]int
	row   datum.Row
	outer expr.Binding
}

// ColValue implements expr.Binding.
func (b *RowBinding) ColValue(c expr.ColID) (datum.Datum, bool) {
	if i, ok := b.idx[c]; ok && i < len(b.row) {
		return b.row[i], true
	}
	if b.outer != nil {
		return b.outer.ColValue(c)
	}
	return datum.Null, false
}

// packTID encodes a storage TID as an integer datum for the TID
// pseudo-column.
func packTID(t storage.TID) datum.Datum {
	return datum.NewInt(int64(t.Page)<<32 | int64(uint32(t.Slot)))
}

// unpackTID decodes a TID pseudo-column value.
func unpackTID(d datum.Datum) (storage.TID, error) {
	if d.Kind() != datum.KindInt {
		return storage.TID{}, fmt.Errorf("exec: TID column holds %s", d.Kind())
	}
	v := d.Int()
	return storage.TID{Page: int32(v >> 32), Slot: int32(uint32(v))}, nil
}

// evalPreds reports whether every predicate definitely holds for the row.
func evalPreds(preds []expr.Expr, b expr.Binding) bool {
	for _, p := range preds {
		if !expr.EvalBool(p, b) {
			return false
		}
	}
	return true
}

// storeFor returns the store holding the named base table.
func (ec *Ctx) storeFor(table string) *storage.Store {
	return ec.rt.Cluster.Store(ec.rt.Cat.SiteOf(table))
}
