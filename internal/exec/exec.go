// Package exec is the query evaluator: it interprets a QEP — a DAG of
// LOLEPOPs — at run time against the storage engine, exactly the role the
// paper assigns the "query evaluator" that the grammar's terminals target.
//
// Execution uses the Iterator (Open/Next/Close) model. Nested-loop joins
// re-open their inner per outer tuple with the outer tuple's bindings
// pushed, which is how pushed-down join predicates (sideways information
// passing) become single-table predicates on the inner at run time.
//
// Like the cost model, the evaluator is extensible (Section 5): a Database
// Customizer registers a run-time routine per new LOLEPOP.
package exec

import (
	"fmt"

	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/plan"
	"stars/internal/storage"
)

// Runtime holds what executions need: the stored data (per-site stores) and
// the catalog, plus the registry of operator implementations.
type Runtime struct {
	// Cluster is the per-site storage.
	Cluster *storage.Cluster
	// Cat is the catalog the plans were optimized against.
	Cat *catalog.Catalog

	builders map[plan.Op]IterBuilder
}

// IterBuilder constructs the Iterator for one node kind. The children are
// not yet built; implementations call ec.build on inputs they consume as
// streams.
type IterBuilder func(ec *Ctx, n *plan.Node) (Iterator, error)

// NewRuntime builds a runtime with the built-in operator implementations.
func NewRuntime(cluster *storage.Cluster, cat *catalog.Catalog) *Runtime {
	rt := &Runtime{Cluster: cluster, Cat: cat, builders: map[plan.Op]IterBuilder{}}
	rt.Register(plan.OpAccess, buildAccess)
	rt.Register(plan.OpGet, buildGet)
	rt.Register(plan.OpSort, buildSort)
	rt.Register(plan.OpShip, buildShip)
	rt.Register(plan.OpStore, buildStore)
	rt.Register(plan.OpFilter, buildFilter)
	rt.Register(plan.OpBuildIndex, buildBuildIndex)
	rt.Register(plan.OpJoin, buildJoin)
	rt.Register(plan.OpUnion, buildUnion)
	rt.Register(plan.OpIndexAnd, buildIndexAnd)
	return rt
}

// Register installs (or replaces) the run-time routine for an Op — the
// Section 5 extension point.
func (rt *Runtime) Register(op plan.Op, b IterBuilder) { rt.builders[op] = b }

// Registered reports whether op has a run-time routine.
func (rt *Runtime) Registered(op plan.Op) bool { _, ok := rt.builders[op]; return ok }

// ExecStats reports what one execution actually did, for comparison against
// the optimizer's estimates (experiment E11, in the spirit of [MACK 86]).
type ExecStats struct {
	// IO aggregates page-level counters across all sites.
	IO storage.Counters
	// Messages and BytesShipped count SHIP traffic.
	Messages     int64
	BytesShipped int64
	// RowsOut is the result cardinality.
	RowsOut int64
	// CPUOps counts tuple-handling operations (rows moved through
	// operators), the executable analogue of the cost model's CPU term.
	CPUOps int64
}

// ActualCost converts the observed counters into the cost model's units so
// estimated and actual costs are directly comparable.
func (s ExecStats) ActualCost(w cost.Weights) float64 {
	return w.IO*float64(s.IO.TotalPages()) +
		w.CPU*float64(s.CPUOps) +
		w.Msg*float64(s.Messages) +
		w.Byte*float64(s.BytesShipped)
}

// Result is one execution's output.
type Result struct {
	// Schema names the output columns positionally.
	Schema []expr.ColID
	// Rows is the result set.
	Rows []datum.Row
	// Stats is the observed resource usage.
	Stats ExecStats
}

// Run executes the plan and drains its output. Counters are measured from
// zero for this run (the cluster's counters are reset).
func (rt *Runtime) Run(root *plan.Node) (*Result, error) {
	rt.Cluster.ResetCounters()
	ec := &Ctx{rt: rt, temps: map[*plan.Node]*tempHandle{}}
	it, err := ec.build(root)
	if err != nil {
		return nil, err
	}
	if err := it.Open(nil); err != nil {
		return nil, err
	}
	res := &Result{Schema: it.Schema()}
	for {
		row, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		res.Rows = append(res.Rows, row.Clone())
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	res.Stats.IO = rt.Cluster.TotalCounters()
	res.Stats.Messages = rt.Cluster.Messages
	res.Stats.BytesShipped = rt.Cluster.BytesShipped
	res.Stats.RowsOut = int64(len(res.Rows))
	res.Stats.CPUOps = ec.cpuOps
	return res, nil
}

// Ctx is per-execution state: temp materializations are memoized so a
// nested-loop rescan reads the temp instead of rebuilding it.
type Ctx struct {
	rt     *Runtime
	temps  map[*plan.Node]*tempHandle
	cpuOps int64
}

// tempHandle is a materialized temp: its storage and positional schema.
type tempHandle struct {
	td     *storage.TableData
	schema []expr.ColID
	site   string
}

// Iterator is the operator interface. Open may be called repeatedly (the
// nested-loop join re-opens its inner per outer tuple); outer carries the
// bindings of enclosing operators for per-probe predicate evaluation.
type Iterator interface {
	// Schema returns the positional output columns; valid before Open.
	Schema() []expr.ColID
	// Open (re)starts the stream under the given outer bindings.
	Open(outer expr.Binding) error
	// Next returns the next row; ok=false at end of stream.
	Next() (row datum.Row, ok bool, err error)
	// Close releases resources; the Iterator may be re-Opened after.
	Close() error
}

// build constructs the Iterator for a node via the registry.
func (ec *Ctx) build(n *plan.Node) (Iterator, error) {
	b, ok := ec.rt.builders[n.Op]
	if !ok {
		return nil, fmt.Errorf("exec: no run-time routine registered for %s", n.Op)
	}
	return b(ec, n)
}

// Build constructs the Iterator for an input node; extension run-time
// routines (Section 5) use it to build their children.
func (ec *Ctx) Build(n *plan.Node) (Iterator, error) { return ec.build(n) }

// Tick counts one tuple-handling operation toward the execution's CPU
// statistics; run-time routines call it once per row they produce.
func (ec *Ctx) Tick() { ec.cpuOps++ }

// Runtime returns the runtime (cluster + catalog) the execution runs on.
func (ec *Ctx) Runtime() *Runtime { return ec.rt }

// NewRowBinding builds a binding over a positional schema that defers
// unresolved columns to outer — the same chain built-in operators use.
func NewRowBinding(schema []expr.ColID, outer expr.Binding) *RowBinding {
	return &RowBinding{idx: schemaIndex(schema), outer: outer}
}

// SetRow points the binding at the current row.
func (b *RowBinding) SetRow(row datum.Row) { b.row = row }

// EvalPreds reports whether every predicate definitely holds under b.
func EvalPreds(preds []expr.Expr, b expr.Binding) bool { return evalPreds(preds, b) }

// schemaIndex maps columns to their positions.
func schemaIndex(schema []expr.ColID) map[expr.ColID]int {
	m := make(map[expr.ColID]int, len(schema))
	for i, c := range schema {
		m[c] = i
	}
	return m
}

// RowBinding resolves columns against one positional row, deferring to an
// outer binding for columns it does not carry (the sideways-information
// chain).
type RowBinding struct {
	idx   map[expr.ColID]int
	row   datum.Row
	outer expr.Binding
}

// ColValue implements expr.Binding.
func (b *RowBinding) ColValue(c expr.ColID) (datum.Datum, bool) {
	if i, ok := b.idx[c]; ok && i < len(b.row) {
		return b.row[i], true
	}
	if b.outer != nil {
		return b.outer.ColValue(c)
	}
	return datum.Null, false
}

// packTID encodes a storage TID as an integer datum for the TID
// pseudo-column.
func packTID(t storage.TID) datum.Datum {
	return datum.NewInt(int64(t.Page)<<32 | int64(uint32(t.Slot)))
}

// unpackTID decodes a TID pseudo-column value.
func unpackTID(d datum.Datum) (storage.TID, error) {
	if d.Kind() != datum.KindInt {
		return storage.TID{}, fmt.Errorf("exec: TID column holds %s", d.Kind())
	}
	v := d.Int()
	return storage.TID{Page: int32(v >> 32), Slot: int32(uint32(v))}, nil
}

// evalPreds reports whether every predicate definitely holds for the row.
func evalPreds(preds []expr.Expr, b expr.Binding) bool {
	for _, p := range preds {
		if !expr.EvalBool(p, b) {
			return false
		}
	}
	return true
}

// storeFor returns the store holding the named base table.
func (ec *Ctx) storeFor(table string) *storage.Store {
	return ec.rt.Cluster.Store(ec.rt.Cat.SiteOf(table))
}
