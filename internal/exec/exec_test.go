package exec_test

import (
	"reflect"
	"testing"

	"stars/internal/exec"
	"stars/internal/opt"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/storage"
	"stars/internal/workload"
)

// runBest optimizes, executes, and compares against the oracle.
func runBest(t *testing.T, o *opt.Optimizer, cluster *storage.Cluster, g *query.Graph) (*opt.Result, *exec.Result) {
	t.Helper()
	res, err := o.Optimize(g)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	rt := exec.NewRuntime(cluster, o.Cat)
	er, err := rt.Run(res.Best)
	if err != nil {
		t.Fatalf("execute:\n%s\nerror: %v", plan.Explain(res.Best), err)
	}
	want := workload.Oracle(cluster, o.Cat, g)
	got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(o.Cat))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result mismatch: got %d rows, oracle %d rows\nplan:\n%s",
			len(got), len(want), plan.Explain(res.Best))
	}
	return res, er
}

func TestExecuteFigure1(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	g := workload.Figure1Query()
	res, er := runBest(t, opt.New(cat, opt.Options{}), cluster, g)
	if er.Stats.RowsOut == 0 {
		t.Fatal("expected matches for MGR='Haas'")
	}
	t.Logf("best plan:\n%s", plan.Explain(res.Best))
	t.Logf("rows=%d actual IO pages=%d est cost=%.1f",
		er.Stats.RowsOut, er.Stats.IO.TotalPages(), res.Best.Props.Cost.Total)
}

// TestAllAlternativesAgree executes every retained plan for the full query
// and demands the oracle's result from each — the core safety property of a
// rule-generated plan space.
func TestAllAlternativesAgree(t *testing.T) {
	cat := workload.ChainCatalog(3, 200, 100, 50)
	cluster := storage.NewCluster()
	workload.Populate(cluster, cat, 7)
	g := workload.ChainQuery(3)

	o := opt.New(cat, opt.Options{KeepAllGlue: true})
	res, err := o.Optimize(g)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	want := workload.Oracle(cluster, cat, g)
	all := res.Table.Entry(g.TableSet())
	if len(all) < 3 {
		t.Fatalf("expected several alternatives, got %d", len(all))
	}
	t.Logf("executing %d alternative plans; oracle rows=%d", len(all), len(want))
	rt := exec.NewRuntime(cluster, cat)
	for i, p := range all {
		er, err := rt.Run(p)
		if err != nil {
			t.Fatalf("alternative %d failed:\n%s\nerror: %v", i, plan.Explain(p), err)
		}
		got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("alternative %d disagrees with oracle (%d vs %d rows)\nplan:\n%s",
				i, len(got), len(want), plan.Explain(p))
		}
	}
}

// TestDistributedAlternativesAgree is the all-alternatives equivalence
// property on a distributed catalog: SHIP/STORE veneers and per-site joins
// must not change results.
func TestDistributedAlternativesAgree(t *testing.T) {
	cat := workload.ChainCatalog(2, 300, 150)
	cat.Sites = []string{"HQ", "NY"}
	cat.QuerySite = "HQ"
	cat.Table("T2").Site = "NY"
	cluster := storage.NewCluster("HQ", "NY")
	workload.Populate(cluster, cat, 19)
	g := workload.ChainQuery(2)

	res, err := opt.New(cat, opt.Options{KeepAllGlue: true}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Oracle(cluster, cat, g)
	all := res.Table.Entry(g.TableSet())
	if len(all) < 2 {
		t.Fatalf("expected distributed alternatives, got %d", len(all))
	}
	rt := exec.NewRuntime(cluster, cat)
	for i, p := range all {
		er, err := rt.Run(p)
		if err != nil {
			t.Fatalf("alternative %d failed:\n%s\nerror: %v", i, plan.Explain(p), err)
		}
		got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("alternative %d disagrees (%d vs %d rows)\n%s",
				i, len(got), len(want), plan.Explain(p))
		}
	}
}

func TestExecuteChain4(t *testing.T) {
	cat := workload.ChainCatalog(4, 120, 80, 60, 40)
	cluster := storage.NewCluster()
	workload.Populate(cluster, cat, 3)
	runBest(t, opt.New(cat, opt.Options{}), cluster, workload.ChainQuery(4))
}

func TestExecuteStar3(t *testing.T) {
	cat := workload.StarCatalog(2, 500, 50)
	cluster := storage.NewCluster()
	workload.Populate(cluster, cat, 5)
	runBest(t, opt.New(cat, opt.Options{}), cluster, workload.StarQuery(2))
}
