package exec_test

import (
	"strings"
	"testing"

	"stars/internal/cost"
	"stars/internal/exec"
	"stars/internal/obs"
	"stars/internal/opt"
	"stars/internal/plan"
	"stars/internal/storage"
	"stars/internal/workload"
)

func TestExecStatsAdd(t *testing.T) {
	a := exec.ExecStats{
		IO:       storage.Counters{HeapPageReads: 1, IndexPageReads: 2},
		Messages: 3, BytesShipped: 4, RowsOut: 5, CPUOps: 6,
	}
	a.Add(exec.ExecStats{
		IO:       storage.Counters{HeapPageReads: 10, HeapPageWrites: 7},
		Messages: 30, BytesShipped: 40, RowsOut: 50, CPUOps: 60,
	})
	if a.IO.HeapPageReads != 11 || a.IO.HeapPageWrites != 7 || a.IO.IndexPageReads != 2 {
		t.Errorf("IO = %+v", a.IO)
	}
	if a.Messages != 33 || a.BytesShipped != 44 || a.RowsOut != 55 || a.CPUOps != 66 {
		t.Errorf("ExecStats.Add = %+v", a)
	}
}

func TestCollectOpStatsAttributesActuals(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	res, err := opt.New(cat, opt.Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.NewRuntime(cluster, cat)
	rt.CollectOpStats = true
	sink := obs.NewSink()
	rt.Obs = sink
	er, err := rt.Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Ops) == 0 {
		t.Fatal("CollectOpStats produced no per-node stats")
	}
	root := er.Ops[res.Best]
	if root == nil {
		t.Fatal("root node has no stats")
	}
	if root.Rows != er.Stats.RowsOut {
		t.Errorf("root rows = %d, result has %d", root.Rows, er.Stats.RowsOut)
	}
	if root.Opens != 1 || root.Elapsed <= 0 {
		t.Errorf("root stats = %+v", root)
	}
	// The root's inclusive counters cover the whole run.
	if root.CPUOps != er.Stats.CPUOps {
		t.Errorf("root CPU = %d, run total %d", root.CPUOps, er.Stats.CPUOps)
	}
	if root.IO.TotalPages() != er.Stats.IO.TotalPages() {
		t.Errorf("root pages = %d, run total %d", root.IO.TotalPages(), er.Stats.IO.TotalPages())
	}
	// The sink saw the run span, per-op events, and the run counters.
	var sawRun, sawOp bool
	for _, e := range sink.Events() {
		switch e.Name {
		case obs.EvExecRun:
			sawRun = true
		case obs.EvExecOp:
			sawOp = true
		}
	}
	if !sawRun || !sawOp {
		t.Errorf("events: run=%v op=%v", sawRun, sawOp)
	}
	if got := sink.Registry().Counter("exec_rows_total").Value(); got != er.Stats.RowsOut {
		t.Errorf("exec_rows_total = %d, want %d", got, er.Stats.RowsOut)
	}

	// The Actuals adapter feeds EXPLAIN ANALYZE: every node annotated.
	text := plan.ExplainAnalyze(res.Best, exec.Actuals(er, cost.DefaultWeights))
	if strings.Contains(text, "never executed") {
		t.Errorf("unexecuted node in:\n%s", text)
	}
	if !strings.Contains(text, "Q-err=") {
		t.Errorf("no Q-error in:\n%s", text)
	}
}

func TestCollectOpStatsOffLeavesOpsNil(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	res, err := opt.New(cat, opt.Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	er, err := exec.NewRuntime(cluster, cat).Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if er.Ops != nil {
		t.Fatal("Ops must be nil when CollectOpStats is off")
	}
}

func TestQError(t *testing.T) {
	cases := []struct{ est, act, want float64 }{
		{100, 100, 1},
		{100, 50, 2},
		{50, 100, 2},
		{0, 10, 10}, // estimates clamp to one row
		{10, 0, 10}, // actuals too
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := plan.QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}
