package exec

import (
	"fmt"
	"math"
	"sort"

	"stars/internal/catalog"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/plan"
	"stars/internal/storage"
)

// nodeSchema computes a node's positional output schema structurally,
// without building its Iterator; every Iterator's Schema() agrees with it.
func nodeSchema(n *plan.Node) []expr.ColID {
	switch n.Op {
	case plan.OpAccess:
		return n.Cols
	case plan.OpGet:
		return append(append([]expr.ColID(nil), nodeSchema(n.Inputs[0])...), n.Cols...)
	case plan.OpJoin:
		return append(append([]expr.ColID(nil), nodeSchema(n.Inputs[0])...), nodeSchema(n.Inputs[1])...)
	case plan.OpUnion:
		return nodeSchema(n.Inputs[0])
	case plan.OpIndexAnd:
		return nodeSchema(n.Inputs[1])
	default:
		return nodeSchema(n.Inputs[0])
	}
}

// ensureTemp materializes (once per execution) the temp a STORE or
// BUILDINDEX node denotes and returns its handle. Nested-loop rescans hit
// the memo and re-read the temp instead of rebuilding it — matching the cost
// model's Rescan accounting.
func (ec *Ctx) ensureTemp(n *plan.Node) (*tempHandle, error) {
	if h, ok := ec.temps[n]; ok {
		return h, nil
	}
	switch n.Op {
	case plan.OpStore:
		in, err := ec.build(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		schema := in.Schema()
		names := make([]string, len(schema))
		for i, c := range schema {
			names[i] = c.String()
		}
		site := n.Props.Site
		st := ec.rt.Cluster.Store(site)
		width := 8 * len(schema)
		td := st.CreateTable(n.Table, names, width)
		if err := in.Open(nil); err != nil {
			return nil, err
		}
		for {
			row, ok, err := in.Next()
			if err != nil {
				in.Close()
				return nil, err
			}
			if !ok {
				break
			}
			td.Heap.Insert(row.Clone(), &st.Counters)
		}
		if err := in.Close(); err != nil {
			return nil, err
		}
		h := &tempHandle{td: td, schema: schema, site: site}
		ec.temps[n] = h
		return h, nil
	case plan.OpBuildIndex:
		h, err := ec.ensureTemp(n.Inputs[0])
		if err != nil {
			return nil, err
		}
		st := ec.rt.Cluster.Store(h.site)
		keys := make([]string, len(n.SortCols))
		for i, c := range n.SortCols {
			keys[i] = c.String()
		}
		if _, err := st.BuildIndex(h.td.Name, n.Path, keys); err != nil {
			return nil, err
		}
		ec.temps[n] = h
		return h, nil
	default:
		return nil, fmt.Errorf("exec: %s does not materialize a temp", n.Op)
	}
}

// baseScanIter sequentially scans a base table, projecting the node's
// columns and applying its predicates (including per-probe bound join
// predicates through the outer binding).
type baseScanIter struct {
	ec     *Ctx
	n      *plan.Node
	td     *storage.TableData
	st     *storage.Store
	schema []expr.ColID
	full   []expr.ColID // quantifier-qualified full table schema
	proj   []int        // positions of schema cols in the stored row
	cur    *storage.HeapCursor
	outer  expr.Binding
	bind   *RowBinding
}

func buildAccess(ec *Ctx, n *plan.Node) (Iterator, error) {
	if len(n.Inputs) == 1 {
		return buildTempAccess(ec, n)
	}
	st := ec.storeFor(n.Table)
	td := st.Table(n.Table)
	if td == nil {
		return nil, fmt.Errorf("exec: table %q has no stored data", n.Table)
	}
	if n.Flavor == plan.FlavorIndex {
		return newIndexScan(ec, n, st, td)
	}
	it := &baseScanIter{ec: ec, n: n, td: td, st: st, schema: n.Cols}
	for _, c := range td.Heap.Schema() {
		it.full = append(it.full, expr.ColID{Table: n.Quantifier, Col: c})
	}
	it.proj = make([]int, len(n.Cols))
	for i, c := range n.Cols {
		p := td.ColIndex(c.Col)
		if p < 0 {
			return nil, fmt.Errorf("exec: column %s not stored in %s", c, n.Table)
		}
		it.proj[i] = p
	}
	return it, nil
}

func (it *baseScanIter) Schema() []expr.ColID { return it.schema }

func (it *baseScanIter) Open(outer expr.Binding) error {
	it.outer = outer
	it.cur = it.td.Heap.Cursor(&it.st.Counters)
	it.bind = &RowBinding{idx: schemaIndex(it.full), outer: outer}
	return nil
}

func (it *baseScanIter) Next() (datum.Row, bool, error) {
	for {
		_, row, ok := it.cur.Next()
		if !ok {
			return nil, false, nil
		}
		it.bind.row = row
		if !evalPreds(it.n.Preds.Slice(), it.bind) {
			continue
		}
		out := make(datum.Row, len(it.proj))
		for i, p := range it.proj {
			out[i] = row[p]
		}
		it.ec.cpuOps++
		return out, true, nil
	}
}

func (it *baseScanIter) Close() error { it.cur = nil; return nil }

// indexScanIter probes or scans a B-tree access method, yielding the TID
// pseudo-column plus key columns. The probe prefix is computed at Open from
// the node's predicates under the current outer binding — this is where
// sideways information passing becomes an index lookup.
type indexScanIter struct {
	ec      *Ctx
	n       *plan.Node
	st      *storage.Store
	bt      *storage.BTree
	keyCols []expr.ColID
	schema  []expr.ColID
	outPos  []int // for each schema col: -1 = TID, else key position
	entries []storage.Entry
	pos     int
	outer   expr.Binding
}

func newIndexScan(ec *Ctx, n *plan.Node, st *storage.Store, td *storage.TableData) (Iterator, error) {
	bt := td.Indexes[n.Path]
	if bt == nil {
		// Base indexes are built lazily from the catalog definition on
		// first use. The build is setup, not query work: counters are
		// restored so it does not distort estimated-vs-actual validation.
		ap, _ := ec.rt.Cat.Path(n.Path)
		if ap == nil {
			return nil, fmt.Errorf("exec: unknown access path %q", n.Path)
		}
		saved := st.Counters
		var err error
		bt, err = st.BuildIndex(n.Table, n.Path, ap.Cols)
		st.Counters = saved
		// The build's reads must not leave a warm buffer behind either.
		st.Counters.ClearBuffer()
		if err != nil {
			return nil, err
		}
	}
	ap, _ := ec.rt.Cat.Path(n.Path)
	var keyCols []expr.ColID
	if ap != nil {
		for _, c := range ap.Cols {
			keyCols = append(keyCols, expr.ColID{Table: n.Quantifier, Col: c})
		}
	}
	it := &indexScanIter{ec: ec, n: n, st: st, bt: bt, keyCols: keyCols, schema: n.Cols}
	for _, c := range n.Cols {
		if c.Col == plan.TIDCol {
			it.outPos = append(it.outPos, -1)
			continue
		}
		found := -1
		for i, kc := range keyCols {
			if kc == c {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("exec: index %s does not yield column %s", n.Path, c)
		}
		it.outPos = append(it.outPos, found)
	}
	return it, nil
}

func (it *indexScanIter) Schema() []expr.ColID { return it.schema }

// probeBounds derives the key prefix and range bounds from the node's
// predicates under binding b: a chain of equality predicates on the key
// prefix, optionally one range predicate on the next column.
func probeBounds(preds []expr.Expr, keyCols []expr.ColID, b expr.Binding) (prefix datum.Row, lo, hi datum.Row, residual []expr.Expr) {
	residual = append([]expr.Expr(nil), preds...)
	for _, kc := range keyCols {
		matched := -1
		var val datum.Datum
		var rangeOp expr.CmpOp
		isRange := false
		for i, p := range residual {
			c, ok := p.(*expr.Cmp)
			if !ok {
				continue
			}
			var other expr.Expr
			if lc, ok := c.L.(*expr.Col); ok && lc.ID == kc {
				other = c.R
				rangeOp = c.Op
			} else if rc, ok := c.R.(*expr.Col); ok && rc.ID == kc {
				other = c.L
				rangeOp = c.Op.Flip()
			} else {
				continue
			}
			if referencesCol(other, kc.Table) {
				continue
			}
			v := other.Eval(b)
			if v.IsNull() {
				continue
			}
			matched = i
			val = v
			isRange = c.Op != expr.EQ
			break
		}
		if matched < 0 {
			return prefix, nil, nil, residual
		}
		residual = append(residual[:matched], residual[matched+1:]...)
		if !isRange {
			prefix = append(prefix, val)
			continue
		}
		switch rangeOp {
		case expr.GT, expr.GE:
			lo = append(append(datum.Row{}, prefix...), val)
		case expr.LT, expr.LE:
			hi = append(append(datum.Row{}, prefix...), val)
		}
		return prefix, lo, hi, residual
	}
	return prefix, nil, nil, residual
}

func referencesCol(e expr.Expr, quant string) bool {
	for _, c := range expr.Columns(e) {
		if c.Table == quant {
			return true
		}
	}
	return false
}

func (it *indexScanIter) Open(outer expr.Binding) error {
	it.outer = outer
	it.entries = it.entries[:0]
	it.pos = 0
	prefix, lo, hi, residual := probeBounds(it.n.Preds.Slice(), it.keyCols, outer)
	collect := func(e storage.Entry) bool {
		it.entries = append(it.entries, e)
		return true
	}
	switch {
	case lo != nil || hi != nil:
		it.bt.ScanRange(lo, hi, &it.st.Counters, collect)
	default:
		it.bt.ScanPrefix(prefix, &it.st.Counters, collect)
	}
	// Residual predicates on key columns filter the collected entries.
	if len(residual) > 0 {
		idx := map[expr.ColID]int{}
		for i, kc := range it.keyCols {
			idx[kc] = i
		}
		bind := &RowBinding{idx: idx, outer: outer}
		kept := it.entries[:0]
		for _, e := range it.entries {
			bind.row = e.Key
			if evalPreds(residual, bind) {
				kept = append(kept, e)
			}
		}
		it.entries = kept
	}
	return nil
}

func (it *indexScanIter) Next() (datum.Row, bool, error) {
	if it.pos >= len(it.entries) {
		return nil, false, nil
	}
	e := it.entries[it.pos]
	it.pos++
	out := make(datum.Row, len(it.outPos))
	for i, p := range it.outPos {
		if p < 0 {
			out[i] = packTID(e.TID)
		} else {
			out[i] = e.Key[p]
		}
	}
	it.ec.cpuOps++
	return out, true, nil
}

func (it *indexScanIter) Close() error { it.entries = nil; return nil }

// tempAccessIter scans or probes a materialized temp whose producing subplan
// is the node's input.
type tempAccessIter struct {
	ec     *Ctx
	n      *plan.Node
	h      *tempHandle
	schema []expr.ColID
	proj   []int
	cur    *storage.HeapCursor
	// index-probe state
	probe   bool
	entries []storage.TID
	pos     int
	bind    *RowBinding
	outer   expr.Binding
}

func buildTempAccess(ec *Ctx, n *plan.Node) (Iterator, error) {
	it := &tempAccessIter{ec: ec, n: n, schema: n.Cols, probe: n.Flavor == plan.FlavorIndex}
	return it, nil
}

func (it *tempAccessIter) Schema() []expr.ColID { return it.schema }

func (it *tempAccessIter) Open(outer expr.Binding) error {
	h, err := it.ec.ensureTemp(it.n.Inputs[0])
	if err != nil {
		return err
	}
	it.h = h
	it.outer = outer
	if it.proj == nil {
		it.proj = make([]int, len(it.schema))
		for i, c := range it.schema {
			p := h.td.ColIndex(c.String())
			if p < 0 {
				return fmt.Errorf("exec: temp %s lacks column %s", h.td.Name, c)
			}
			it.proj[i] = p
		}
	}
	it.bind = &RowBinding{idx: schemaIndex(h.schema), outer: outer}
	st := it.ec.rt.Cluster.Store(h.site)
	if !it.probe {
		it.cur = h.td.Heap.Cursor(&st.Counters)
		return nil
	}
	bt := h.td.Indexes[it.n.Path]
	if bt == nil {
		return fmt.Errorf("exec: temp %s lacks index %s", h.td.Name, it.n.Path)
	}
	// Key columns of the dynamic index, resolved through the temp schema.
	var keyCols []expr.ColID
	if bi := it.n.Inputs[0]; bi.Op == plan.OpBuildIndex {
		keyCols = bi.SortCols
	}
	prefix, lo, hi, _ := probeBounds(it.n.Preds.Slice(), keyCols, outer)
	it.entries = it.entries[:0]
	it.pos = 0
	collect := func(e storage.Entry) bool {
		it.entries = append(it.entries, e.TID)
		return true
	}
	switch {
	case lo != nil || hi != nil:
		bt.ScanRange(lo, hi, &st.Counters, collect)
	default:
		bt.ScanPrefix(prefix, &st.Counters, collect)
	}
	return nil
}

func (it *tempAccessIter) Next() (datum.Row, bool, error) {
	st := it.ec.rt.Cluster.Store(it.h.site)
	for {
		var row datum.Row
		if it.probe {
			if it.pos >= len(it.entries) {
				return nil, false, nil
			}
			var ok bool
			row, ok = it.h.td.Heap.Fetch(it.entries[it.pos], &st.Counters)
			it.pos++
			if !ok {
				return nil, false, fmt.Errorf("exec: dangling TID in temp %s", it.h.td.Name)
			}
		} else {
			var ok bool
			_, row, ok = it.cur.Next()
			if !ok {
				return nil, false, nil
			}
		}
		it.bind.row = row
		if !evalPreds(it.n.Preds.Slice(), it.bind) {
			continue
		}
		out := make(datum.Row, len(it.proj))
		for i, p := range it.proj {
			out[i] = row[p]
		}
		it.ec.cpuOps++
		return out, true, nil
	}
}

func (it *tempAccessIter) Close() error { it.cur = nil; it.entries = nil; return nil }

// getIter fetches additional columns by TID for each input tuple (Figure 1's
// GET).
type getIter struct {
	ec     *Ctx
	n      *plan.Node
	in     Iterator
	td     *storage.TableData
	st     *storage.Store
	schema []expr.ColID
	tidPos int
	fetch  []int
	bind   *RowBinding
}

func buildGet(ec *Ctx, n *plan.Node) (Iterator, error) {
	in, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	st := ec.storeFor(n.Table)
	td := st.Table(n.Table)
	if td == nil {
		return nil, fmt.Errorf("exec: table %q has no stored data", n.Table)
	}
	it := &getIter{ec: ec, n: n, in: in, td: td, st: st}
	it.tidPos = -1
	for i, c := range in.Schema() {
		if c.Table == n.Quantifier && c.Col == plan.TIDCol {
			it.tidPos = i
			break
		}
	}
	if it.tidPos < 0 {
		return nil, fmt.Errorf("exec: GET input lacks %s.%s", n.Quantifier, plan.TIDCol)
	}
	it.schema = append(append([]expr.ColID(nil), in.Schema()...), n.Cols...)
	it.fetch = make([]int, len(n.Cols))
	for i, c := range n.Cols {
		p := td.ColIndex(c.Col)
		if p < 0 {
			return nil, fmt.Errorf("exec: column %s not stored in %s", c, n.Table)
		}
		it.fetch[i] = p
	}
	return it, nil
}

func (it *getIter) Schema() []expr.ColID { return it.schema }

func (it *getIter) Open(outer expr.Binding) error {
	it.bind = &RowBinding{idx: schemaIndex(it.schema), outer: outer}
	return it.in.Open(outer)
}

func (it *getIter) Next() (datum.Row, bool, error) {
	for {
		row, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		tid, err := unpackTID(row[it.tidPos])
		if err != nil {
			return nil, false, err
		}
		stored, ok := it.td.Heap.Fetch(tid, &it.st.Counters)
		if !ok {
			return nil, false, fmt.Errorf("exec: dangling TID %v in %s", tid, it.n.Table)
		}
		out := make(datum.Row, 0, len(it.schema))
		out = append(out, row...)
		for _, p := range it.fetch {
			out = append(out, stored[p])
		}
		it.bind.row = out
		if !evalPreds(it.n.Preds.Slice(), it.bind) {
			continue
		}
		it.ec.cpuOps++
		return out, true, nil
	}
}

func (it *getIter) Close() error { return it.in.Close() }

// sortIter drains and orders its input.
type sortIter struct {
	ec   *Ctx
	n    *plan.Node
	in   Iterator
	keys []int
	rows []datum.Row
	pos  int
}

func buildSort(ec *Ctx, n *plan.Node) (Iterator, error) {
	in, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	idx := schemaIndex(in.Schema())
	keys := make([]int, len(n.SortCols))
	for i, c := range n.SortCols {
		p, ok := idx[c]
		if !ok {
			return nil, fmt.Errorf("exec: SORT key %s not in input", c)
		}
		keys[i] = p
	}
	return &sortIter{ec: ec, n: n, in: in, keys: keys}, nil
}

func (it *sortIter) Schema() []expr.ColID { return it.in.Schema() }

func (it *sortIter) Open(outer expr.Binding) error {
	if err := it.in.Open(outer); err != nil {
		return err
	}
	it.rows = it.rows[:0]
	it.pos = 0
	for {
		row, ok, err := it.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		it.rows = append(it.rows, row.Clone())
	}
	if err := it.in.Close(); err != nil {
		return err
	}
	sort.SliceStable(it.rows, func(i, j int) bool {
		return datum.CompareRows(it.rows[i], it.rows[j], it.keys) < 0
	})
	return nil
}

func (it *sortIter) Next() (datum.Row, bool, error) {
	if it.pos >= len(it.rows) {
		return nil, false, nil
	}
	row := it.rows[it.pos]
	it.pos++
	it.ec.cpuOps++
	return row, true, nil
}

func (it *sortIter) Close() error { it.rows = nil; return nil }

// shipIter moves a stream between sites, accounting messages and bytes on
// the simulated network.
type shipIter struct {
	ec    *Ctx
	in    Iterator
	bytes int64
	done  bool
}

func buildShip(ec *Ctx, n *plan.Node) (Iterator, error) {
	in, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	return &shipIter{ec: ec, in: in}, nil
}

func (it *shipIter) Schema() []expr.ColID { return it.in.Schema() }

func (it *shipIter) Open(outer expr.Binding) error {
	it.bytes = 0
	it.done = false
	return it.in.Open(outer)
}

func (it *shipIter) Next() (datum.Row, bool, error) {
	row, ok, err := it.in.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		if !it.done {
			it.done = true
			msgs := int64(math.Ceil(float64(it.bytes)/catalog.PageSize)) + 1
			for i := int64(0); i < msgs; i++ {
				it.ec.rt.Cluster.Ship(0, 0)
			}
			it.ec.rt.Cluster.BytesShipped += it.bytes
		}
		return nil, false, nil
	}
	it.bytes += int64(row.Width())
	it.ec.cpuOps++
	return row, true, nil
}

func (it *shipIter) Close() error { return it.in.Close() }

// storeIter materializes its input as a temp (once) and streams the temp.
type storeIter struct {
	ec  *Ctx
	n   *plan.Node
	h   *tempHandle
	cur *storage.HeapCursor
}

func buildStore(ec *Ctx, n *plan.Node) (Iterator, error) {
	return &storeIter{ec: ec, n: n}, nil
}

func (it *storeIter) Schema() []expr.ColID { return nodeSchema(it.n) }

func (it *storeIter) Open(outer expr.Binding) error {
	h, err := it.ec.ensureTemp(it.n)
	if err != nil {
		return err
	}
	it.h = h
	st := it.ec.rt.Cluster.Store(h.site)
	it.cur = h.td.Heap.Cursor(&st.Counters)
	return nil
}

func (it *storeIter) Next() (datum.Row, bool, error) {
	_, row, ok := it.cur.Next()
	if !ok {
		return nil, false, nil
	}
	it.ec.cpuOps++
	return row, true, nil
}

func (it *storeIter) Close() error { it.cur = nil; return nil }

// filterIter applies predicates; under a nested-loop probe its bound join
// predicates see the outer tuple through the binding chain.
type filterIter struct {
	ec   *Ctx
	n    *plan.Node
	in   Iterator
	bind *RowBinding
}

func buildFilter(ec *Ctx, n *plan.Node) (Iterator, error) {
	in, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	return &filterIter{ec: ec, n: n, in: in}, nil
}

func (it *filterIter) Schema() []expr.ColID { return it.in.Schema() }

func (it *filterIter) Open(outer expr.Binding) error {
	it.bind = &RowBinding{idx: schemaIndex(it.in.Schema()), outer: outer}
	return it.in.Open(outer)
}

func (it *filterIter) Next() (datum.Row, bool, error) {
	for {
		row, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.bind.row = row
		if evalPreds(it.n.Preds.Slice(), it.bind) {
			it.ec.cpuOps++
			return row, true, nil
		}
	}
}

func (it *filterIter) Close() error { return it.in.Close() }

// buildIndexIter materializes its input temp, builds the index, and streams
// the temp (it is usually consumed through a temp-access probe instead).
type buildIndexIter struct {
	ec  *Ctx
	n   *plan.Node
	h   *tempHandle
	cur *storage.HeapCursor
}

func buildBuildIndex(ec *Ctx, n *plan.Node) (Iterator, error) {
	return &buildIndexIter{ec: ec, n: n}, nil
}

func (it *buildIndexIter) Schema() []expr.ColID { return nodeSchema(it.n) }

func (it *buildIndexIter) Open(outer expr.Binding) error {
	h, err := it.ec.ensureTemp(it.n)
	if err != nil {
		return err
	}
	it.h = h
	st := it.ec.rt.Cluster.Store(h.site)
	it.cur = h.td.Heap.Cursor(&st.Counters)
	return nil
}

func (it *buildIndexIter) Next() (datum.Row, bool, error) {
	_, row, ok := it.cur.Next()
	if !ok {
		return nil, false, nil
	}
	it.ec.cpuOps++
	return row, true, nil
}

func (it *buildIndexIter) Close() error { it.cur = nil; return nil }

// ixAndIter intersects two index-probe streams of the same quantifier on
// their TID pseudo-column (the index-ANDing access path). The first input is
// drained into a TID set; the second streams through it.
type ixAndIter struct {
	ec    *Ctx
	left  Iterator
	right Iterator
	ltid  int
	rtid  int
	set   map[datum.Datum]bool
}

func buildIndexAnd(ec *Ctx, n *plan.Node) (Iterator, error) {
	left, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	right, err := ec.build(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	it := &ixAndIter{ec: ec, left: left, right: right}
	it.ltid, it.rtid = -1, -1
	for i, c := range left.Schema() {
		if c.Col == plan.TIDCol {
			it.ltid = i
		}
	}
	for i, c := range right.Schema() {
		if c.Col == plan.TIDCol {
			it.rtid = i
		}
	}
	if it.ltid < 0 || it.rtid < 0 {
		return nil, fmt.Errorf("exec: IXAND inputs must carry the TID column")
	}
	return it, nil
}

func (it *ixAndIter) Schema() []expr.ColID { return it.right.Schema() }

func (it *ixAndIter) Open(outer expr.Binding) error {
	it.set = map[datum.Datum]bool{}
	if err := it.left.Open(outer); err != nil {
		return err
	}
	for {
		row, ok, err := it.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		it.set[row[it.ltid]] = true
		it.ec.cpuOps++
	}
	if err := it.left.Close(); err != nil {
		return err
	}
	return it.right.Open(outer)
}

func (it *ixAndIter) Next() (datum.Row, bool, error) {
	for {
		row, ok, err := it.right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.ec.cpuOps++
		if it.set[row[it.rtid]] {
			return row, true, nil
		}
	}
}

func (it *ixAndIter) Close() error {
	it.set = nil
	return it.right.Close()
}
