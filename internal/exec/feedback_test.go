package exec_test

import (
	"reflect"
	"testing"

	"stars/internal/exec"
	"stars/internal/obs"
	"stars/internal/opt"
	"stars/internal/storage"
	"stars/internal/workload"
)

// runWithFeedback optimizes and executes Figure 1 with op-stats collection,
// returning the exec.feedback events in stream order.
func runWithFeedback(t *testing.T) []obs.Event {
	t.Helper()
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	res, err := opt.New(cat, opt.Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.NewRuntime(cluster, cat)
	rt.CollectOpStats = true
	sink := obs.NewSink()
	rt.Obs = sink
	if _, err := rt.Run(res.Best); err != nil {
		t.Fatal(err)
	}
	var out []obs.Event
	for _, e := range sink.Events() {
		if e.Name == obs.EvExecFeedback {
			e.Seq, e.T = 0, 0 // compare payloads, not clock fields
			out = append(out, e)
		}
	}
	if got := sink.Registry().Counter("qerror_observations_total").Value(); got != int64(len(out)) {
		t.Errorf("qerror_observations_total = %d, %d feedback events", got, len(out))
	}
	return out
}

func TestExecFeedbackEvents(t *testing.T) {
	events := runWithFeedback(t)
	if len(events) == 0 {
		t.Fatal("no exec.feedback events")
	}
	for _, e := range events {
		if e.A1 == "" || len(e.A2) != 16 {
			t.Errorf("feedback without operator/fingerprint: %+v", e)
		}
		if e.F2 < 1 {
			t.Errorf("Q-error below 1: %+v", e)
		}
		if e.N2 < 1 {
			t.Errorf("open count below 1: %+v", e)
		}
	}
	// The feedback walk is the plan tree in pre-order, so two identical
	// runs emit identical streams — the property the serve ledger and the
	// parallelism determinism tests build on.
	if again := runWithFeedback(t); !reflect.DeepEqual(events, again) {
		t.Errorf("feedback events not deterministic:\nfirst:  %+v\nsecond: %+v", events, again)
	}
}

func TestNoFeedbackWithoutOpStats(t *testing.T) {
	cat := workload.EmpDept()
	cluster := storage.NewCluster()
	workload.PopulateEmpDept(cluster, cat, 1)
	res, err := opt.New(cat, opt.Options{}).Optimize(workload.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	rt := exec.NewRuntime(cluster, cat)
	sink := obs.NewSink()
	rt.Obs = sink
	if _, err := rt.Run(res.Best); err != nil {
		t.Fatal(err)
	}
	for _, e := range sink.Events() {
		if e.Name == obs.EvExecFeedback || e.Name == obs.EvExecOp {
			t.Fatalf("per-op event without CollectOpStats: %+v", e)
		}
	}
}
