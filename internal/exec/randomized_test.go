package exec_test

import (
	"math/rand"
	"reflect"
	"testing"

	"stars/internal/catalog"
	"stars/internal/exec"
	"stars/internal/opt"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/storage"
	"stars/internal/workload"
)

// TestRandomizedEndToEnd is the repository's broadest correctness property:
// across randomized schemas, cardinalities, data seeds, and optimizer
// options, the chosen plan's executed result must equal the brute-force
// oracle's. Failures print the trial seed and the plan.
func TestRandomizedEndToEnd(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		r := rand.New(rand.NewSource(int64(1000 + trial)))

		var cat *catalog.Catalog
		var g *query.Graph
		if r.Intn(2) == 0 {
			n := 2 + r.Intn(3)
			cards := make([]int64, n)
			for i := range cards {
				cards[i] = int64(20 + r.Intn(300))
			}
			cat = workload.ChainCatalog(n, cards...)
			g = workload.ChainQuery(n)
		} else {
			k := 1 + r.Intn(2)
			cat = workload.StarCatalog(k, int64(100+r.Intn(800)), int64(10+r.Intn(50)))
			g = workload.StarQuery(k)
		}
		opts := opt.Options{
			CartesianProducts: r.Intn(2) == 0,
			NoCompositeInners: r.Intn(3) == 0,
			KeepAllGlue:       r.Intn(4) == 0,
			DisablePruning:    r.Intn(6) == 0,
		}
		// KeepAllGlue × DisablePruning multiplies the join cross-products
		// against an unpruned plan table — deliberately explosive, and not
		// a combination the ablations pair either.
		if opts.DisablePruning {
			opts.KeepAllGlue = false
		}

		cluster := storage.NewCluster()
		workload.Populate(cluster, cat, int64(trial))

		res, err := opt.New(cat, opts).Optimize(g)
		if err != nil {
			t.Fatalf("trial %d (%+v): optimize: %v", trial, opts, err)
		}
		er, err := exec.NewRuntime(cluster, cat).Run(res.Best)
		if err != nil {
			t.Fatalf("trial %d: execute:\n%s\nerror: %v", trial, plan.Explain(res.Best), err)
		}
		want := workload.Oracle(cluster, cat, g)
		got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: result mismatch (%d vs %d rows)\noptions: %+v\nplan:\n%s",
				trial, len(got), len(want), opts, plan.Explain(res.Best))
		}
	}
}
