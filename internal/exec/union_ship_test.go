package exec_test

import (
	"testing"

	"stars/internal/catalog"
	"stars/internal/cost"
	"stars/internal/datum"
	"stars/internal/exec"
	"stars/internal/expr"
	"stars/internal/plan"
	"stars/internal/storage"
)

// miniSetup builds a one-table catalog + cluster with known rows, plus a
// priced scan node factory, for driving operators directly.
func miniSetup(t *testing.T) (*catalog.Catalog, *storage.Cluster, *cost.Env, func(preds ...expr.Expr) *plan.Node) {
	t.Helper()
	cat := catalog.New()
	cat.Sites = []string{"A", "B"}
	cat.AddTable(&catalog.Table{
		Name: "T",
		Cols: []*catalog.Column{
			{Name: "X", Type: datum.KindInt, NDV: 10},
		},
		Card: 10,
	})
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	cluster := storage.NewCluster("A", "B")
	td := cluster.Store("").CreateTable("T", []string{"X"}, 8)
	for i := int64(0); i < 10; i++ {
		td.Heap.Insert(datum.Row{datum.NewInt(i)}, nil)
	}
	env := cost.NewEnv(cat, cost.DefaultWeights)
	env.BindQuantifier("T", "T")
	mk := func(preds ...expr.Expr) *plan.Node {
		n := &plan.Node{
			Op: plan.OpAccess, Flavor: plan.FlavorHeap, Table: "T", Quantifier: "T",
			Cols:  []expr.ColID{{Table: "T", Col: "X"}},
			Preds: expr.NewPredSet(preds...),
		}
		if err := env.PriceTree(n); err != nil {
			t.Fatal(err)
		}
		return n
	}
	return cat, cluster, env, mk
}

func lessThan(v int64) expr.Expr {
	return &expr.Cmp{Op: expr.LT, L: expr.C("T", "X"), R: &expr.Const{Val: datum.NewInt(v)}}
}

func atLeast(v int64) expr.Expr {
	return &expr.Cmp{Op: expr.GE, L: expr.C("T", "X"), R: &expr.Const{Val: datum.NewInt(v)}}
}

func TestUnionOperator(t *testing.T) {
	cat, cluster, env, mk := miniSetup(t)
	u := &plan.Node{Op: plan.OpUnion, Inputs: []*plan.Node{mk(lessThan(3)), mk(atLeast(7))}}
	if err := env.PriceTree(u); err != nil {
		t.Fatal(err)
	}
	er, err := exec.NewRuntime(cluster, cat).Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(er.Rows) != 6 { // 0,1,2 and 7,8,9
		t.Fatalf("union rows = %d, want 6", len(er.Rows))
	}
	// UNION ALL keeps duplicates.
	u2 := &plan.Node{Op: plan.OpUnion, Inputs: []*plan.Node{mk(lessThan(3)), mk(lessThan(3))}}
	if err := env.PriceTree(u2); err != nil {
		t.Fatal(err)
	}
	er2, err := exec.NewRuntime(cluster, cat).Run(u2)
	if err != nil {
		t.Fatal(err)
	}
	if len(er2.Rows) != 6 {
		t.Fatalf("union all must keep duplicates: %d", len(er2.Rows))
	}
}

func TestShipAccountingMatchesEstimate(t *testing.T) {
	cat, cluster, env, mk := miniSetup(t)
	ship := &plan.Node{Op: plan.OpShip, Site: "B", Inputs: []*plan.Node{mk()}}
	if err := env.PriceTree(ship); err != nil {
		t.Fatal(err)
	}
	er, err := exec.NewRuntime(cluster, cat).Run(ship)
	if err != nil {
		t.Fatal(err)
	}
	if er.Stats.Messages != int64(ship.Props.Cost.Msg) {
		t.Errorf("messages: actual %d vs estimated %.0f", er.Stats.Messages, ship.Props.Cost.Msg)
	}
	if er.Stats.BytesShipped == 0 {
		t.Error("bytes must be counted")
	}
	// Estimated bytes use catalog widths; actual uses datum widths (ints:
	// 8B each way) — they agree here.
	if float64(er.Stats.BytesShipped) != ship.Props.Cost.Bytes {
		t.Errorf("bytes: actual %d vs estimated %.0f", er.Stats.BytesShipped, ship.Props.Cost.Bytes)
	}
}

func TestIndexAndPricingErrors(t *testing.T) {
	cat, _, env, mk := miniSetup(t)
	_ = cat
	a := mk(lessThan(3))
	shipped := &plan.Node{Op: plan.OpShip, Site: "B", Inputs: []*plan.Node{mk(lessThan(3))}}
	if err := env.PriceTree(shipped); err != nil {
		t.Fatal(err)
	}
	cross := &plan.Node{Op: plan.OpIndexAnd, Inputs: []*plan.Node{a, shipped}}
	if err := env.Price(cross); err == nil {
		t.Error("IXAND across sites must be rejected")
	}
}
