package exec

import (
	"fmt"

	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/plan"
)

func buildJoin(ec *Ctx, n *plan.Node) (Iterator, error) {
	outer, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	inner, err := ec.build(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	switch n.Flavor {
	case plan.MethodNL:
		return newNLJoin(ec, n, outer, inner), nil
	case plan.MethodMG:
		return newMergeJoin(ec, n, outer, inner)
	case plan.MethodHA:
		return newHashJoin(ec, n, outer, inner)
	default:
		return nil, fmt.Errorf("exec: unknown JOIN flavor %q", n.Flavor)
	}
}

// nlJoinIter is the nested-loop join: for each outer tuple, the inner stream
// is re-opened with the outer tuple's bindings pushed, so join predicates
// pushed into the inner become single-table predicates per probe (Section
// 4.4's sideways information passing). Residual predicates are applied to
// the combined row.
type nlJoinIter struct {
	ec           *Ctx
	n            *plan.Node
	outer, inner Iterator
	schema       []expr.ColID
	parentBind   expr.Binding
	outerBind    *RowBinding
	combined     *RowBinding
	outerRow     datum.Row
	innerOpen    bool
}

func newNLJoin(ec *Ctx, n *plan.Node, outer, inner Iterator) *nlJoinIter {
	schema := append(append([]expr.ColID(nil), outer.Schema()...), inner.Schema()...)
	return &nlJoinIter{ec: ec, n: n, outer: outer, inner: inner, schema: schema}
}

func (it *nlJoinIter) Schema() []expr.ColID { return it.schema }

func (it *nlJoinIter) Open(outer expr.Binding) error {
	it.parentBind = outer
	it.outerBind = &RowBinding{idx: schemaIndex(it.outer.Schema()), outer: outer}
	it.combined = &RowBinding{idx: schemaIndex(it.schema), outer: outer}
	it.outerRow = nil
	it.innerOpen = false
	return it.outer.Open(outer)
}

func (it *nlJoinIter) Next() (datum.Row, bool, error) {
	for {
		if it.outerRow == nil {
			row, ok, err := it.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.outerRow = row.Clone()
			it.outerBind.row = it.outerRow
			if it.innerOpen {
				if err := it.inner.Close(); err != nil {
					return nil, false, err
				}
			}
			if err := it.inner.Open(it.outerBind); err != nil {
				return nil, false, err
			}
			it.innerOpen = true
		}
		irow, ok, err := it.inner.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			it.outerRow = nil
			continue
		}
		out := make(datum.Row, 0, len(it.schema))
		out = append(out, it.outerRow...)
		out = append(out, irow...)
		it.combined.row = out
		if !evalPreds(it.n.Residual.Slice(), it.combined) {
			continue
		}
		it.ec.cpuOps++
		return out, true, nil
	}
}

func (it *nlJoinIter) Close() error {
	if it.innerOpen {
		it.innerOpen = false
		if err := it.inner.Close(); err != nil {
			it.outer.Close()
			return err
		}
	}
	return it.outer.Close()
}

// mergeJoinIter is the sort-merge join of Figure 1: both inputs arrive
// ordered on the sortable predicates' columns (Glue guaranteed it) and are
// merged, buffering each inner key group for outer duplicates.
type mergeJoinIter struct {
	ec           *Ctx
	n            *plan.Node
	outer, inner Iterator
	schema       []expr.ColID
	outerPos     []int
	innerPos     []int
	combined     *RowBinding

	outerRow   datum.Row
	outerDone  bool
	innerRow   datum.Row
	innerDone  bool
	group      []datum.Row // buffered inner rows with the current key
	groupKey   datum.Row
	groupIdx   int
	groupValid bool
}

func newMergeJoin(ec *Ctx, n *plan.Node, outer, inner Iterator) (Iterator, error) {
	it := &mergeJoinIter{ec: ec, n: n, outer: outer, inner: inner}
	it.schema = append(append([]expr.ColID(nil), outer.Schema()...), inner.Schema()...)
	oIdx := schemaIndex(outer.Schema())
	iIdx := schemaIndex(inner.Schema())
	for _, p := range n.Preds.Slice() {
		c, ok := p.(*expr.Cmp)
		if !ok || c.Op != expr.EQ {
			return nil, fmt.Errorf("exec: merge join on non-equality predicate %s", p)
		}
		lc, lok := c.L.(*expr.Col)
		rc, rok := c.R.(*expr.Col)
		if !lok || !rok {
			return nil, fmt.Errorf("exec: merge join on non-column predicate %s", p)
		}
		lo, lIsOuter := oIdx[lc.ID]
		ri, rIsInner := iIdx[rc.ID]
		if lIsOuter && rIsInner {
			it.outerPos = append(it.outerPos, lo)
			it.innerPos = append(it.innerPos, ri)
			continue
		}
		lo2, lIsInner := iIdx[lc.ID]
		ri2, rIsOuter := oIdx[rc.ID]
		if lIsInner && rIsOuter {
			it.outerPos = append(it.outerPos, ri2)
			it.innerPos = append(it.innerPos, lo2)
			continue
		}
		return nil, fmt.Errorf("exec: merge-join predicate %s does not span the inputs", p)
	}
	if len(it.outerPos) == 0 {
		return nil, fmt.Errorf("exec: merge join without sortable predicates")
	}
	return it, nil
}

func (it *mergeJoinIter) Schema() []expr.ColID { return it.schema }

func (it *mergeJoinIter) Open(outer expr.Binding) error {
	it.combined = &RowBinding{idx: schemaIndex(it.schema), outer: outer}
	it.outerRow, it.innerRow = nil, nil
	it.outerDone, it.innerDone = false, false
	it.group = nil
	it.groupValid = false
	if err := it.outer.Open(outer); err != nil {
		return err
	}
	return it.inner.Open(outer)
}

// keyHasNull reports whether any key column is NULL; NULL join keys never
// match in SQL, so the merge skips such rows entirely (NULLs sort adjacent,
// which would otherwise pair them).
func keyHasNull(row datum.Row, pos []int) bool {
	for _, p := range pos {
		if row[p].IsNull() {
			return true
		}
	}
	return false
}

func (it *mergeJoinIter) advanceOuter() error {
	for {
		row, ok, err := it.outer.Next()
		if err != nil {
			return err
		}
		if !ok {
			it.outerDone = true
			it.outerRow = nil
			return nil
		}
		if keyHasNull(row, it.outerPos) {
			continue
		}
		it.outerRow = row.Clone()
		return nil
	}
}

func (it *mergeJoinIter) advanceInner() error {
	for {
		row, ok, err := it.inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			it.innerDone = true
			it.innerRow = nil
			return nil
		}
		if keyHasNull(row, it.innerPos) {
			continue
		}
		it.innerRow = row.Clone()
		return nil
	}
}

// keyCmp compares the current outer row's key against key k.
func (it *mergeJoinIter) keyCmp(outerRow datum.Row, k datum.Row) int {
	for i, op := range it.outerPos {
		a, b := outerRow[op], k[i]
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
	}
	return 0
}

func innerKey(row datum.Row, pos []int) datum.Row {
	k := make(datum.Row, len(pos))
	for i, p := range pos {
		k[i] = row[p]
	}
	return k
}

func (it *mergeJoinIter) Next() (datum.Row, bool, error) {
	for {
		// Emit from the buffered group.
		if it.groupValid && it.groupIdx < len(it.group) {
			irow := it.group[it.groupIdx]
			it.groupIdx++
			out := make(datum.Row, 0, len(it.schema))
			out = append(out, it.outerRow...)
			out = append(out, irow...)
			it.combined.row = out
			if !evalPreds(it.n.Residual.Slice(), it.combined) {
				continue
			}
			it.ec.cpuOps++
			return out, true, nil
		}
		// Group exhausted for this outer row: advance the outer.
		if it.groupValid {
			if err := it.advanceOuter(); err != nil {
				return nil, false, err
			}
			if it.outerDone {
				return nil, false, nil
			}
			switch it.keyCmp(it.outerRow, it.groupKey) {
			case 0:
				it.groupIdx = 0 // duplicate outer key: replay the group
				continue
			default:
				it.groupValid = false
			}
		}
		// Initialize streams on the first call.
		if it.outerRow == nil && !it.outerDone {
			if err := it.advanceOuter(); err != nil {
				return nil, false, err
			}
			if err := it.advanceInner(); err != nil {
				return nil, false, err
			}
		}
		if it.outerDone || (it.innerDone && !it.groupValid) {
			return nil, false, nil
		}
		// Merge: align keys.
		for {
			if it.innerRow == nil {
				return nil, false, nil
			}
			k := innerKey(it.innerRow, it.innerPos)
			c := it.keyCmp(it.outerRow, k)
			if c < 0 {
				if err := it.advanceOuter(); err != nil {
					return nil, false, err
				}
				if it.outerDone {
					return nil, false, nil
				}
				continue
			}
			if c > 0 {
				if err := it.advanceInner(); err != nil {
					return nil, false, err
				}
				if it.innerDone {
					return nil, false, nil
				}
				continue
			}
			// Keys match: buffer the whole inner group.
			it.group = it.group[:0]
			it.groupKey = k
			for it.innerRow != nil && it.keyCmp(it.outerRow, innerKey(it.innerRow, it.innerPos)) == 0 {
				it.group = append(it.group, it.innerRow)
				if err := it.advanceInner(); err != nil {
					return nil, false, err
				}
			}
			it.groupIdx = 0
			it.groupValid = true
			break
		}
	}
}

func (it *mergeJoinIter) Close() error {
	err1 := it.outer.Close()
	err2 := it.inner.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// hashJoinIter bucketizes the inner on the hashable predicates' inner-side
// expressions, then probes with the outer side. The hashable predicates are
// re-verified via the residual list, exactly the paper's collision note
// (Section 4.5.1).
type hashJoinIter struct {
	ec           *Ctx
	n            *plan.Node
	outer, inner Iterator
	schema       []expr.ColID
	outerExprs   []expr.Expr
	innerExprs   []expr.Expr
	combined     *RowBinding
	outerBindRow *RowBinding
	innerBindRow *RowBinding

	table    map[uint64][]datum.Row
	outerRow datum.Row
	bucket   []datum.Row
	bpos     int
}

func newHashJoin(ec *Ctx, n *plan.Node, outer, inner Iterator) (Iterator, error) {
	it := &hashJoinIter{ec: ec, n: n, outer: outer, inner: inner}
	it.schema = append(append([]expr.ColID(nil), outer.Schema()...), inner.Schema()...)
	oIdx := schemaIndex(outer.Schema())
	for _, p := range n.Preds.Slice() {
		c, ok := p.(*expr.Cmp)
		if !ok || c.Op != expr.EQ {
			return nil, fmt.Errorf("exec: hash join on non-equality predicate %s", p)
		}
		if exprOver(c.L, oIdx) {
			it.outerExprs = append(it.outerExprs, c.L)
			it.innerExprs = append(it.innerExprs, c.R)
		} else if exprOver(c.R, oIdx) {
			it.outerExprs = append(it.outerExprs, c.R)
			it.innerExprs = append(it.innerExprs, c.L)
		} else {
			return nil, fmt.Errorf("exec: hash-join predicate %s does not span the inputs", p)
		}
	}
	if len(it.outerExprs) == 0 {
		return nil, fmt.Errorf("exec: hash join without hashable predicates")
	}
	return it, nil
}

// exprOver reports whether every column of e resolves within the schema
// index.
func exprOver(e expr.Expr, idx map[expr.ColID]int) bool {
	cols := expr.Columns(e)
	if len(cols) == 0 {
		return false
	}
	for _, c := range cols {
		if _, ok := idx[c]; !ok {
			return false
		}
	}
	return true
}

func hashKey(exprs []expr.Expr, b expr.Binding) (uint64, bool) {
	h := uint64(1469598103934665603)
	for _, e := range exprs {
		v := e.Eval(b)
		if v.IsNull() {
			return 0, false
		}
		h ^= v.Hash()
		h *= 1099511628211
	}
	return h, true
}

func (it *hashJoinIter) Schema() []expr.ColID { return it.schema }

func (it *hashJoinIter) Open(outer expr.Binding) error {
	it.combined = &RowBinding{idx: schemaIndex(it.schema), outer: outer}
	it.outerBindRow = &RowBinding{idx: schemaIndex(it.outer.Schema()), outer: outer}
	it.innerBindRow = &RowBinding{idx: schemaIndex(it.inner.Schema()), outer: outer}
	it.table = map[uint64][]datum.Row{}
	it.outerRow = nil
	it.bucket = nil
	// Build phase: bucketize the inner.
	if err := it.inner.Open(outer); err != nil {
		return err
	}
	for {
		row, ok, err := it.inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		it.innerBindRow.row = row
		h, ok := hashKey(it.innerExprs, it.innerBindRow)
		if !ok {
			continue // NULL join keys never match
		}
		it.table[h] = append(it.table[h], row.Clone())
		it.ec.cpuOps++
	}
	if err := it.inner.Close(); err != nil {
		return err
	}
	return it.outer.Open(outer)
}

func (it *hashJoinIter) Next() (datum.Row, bool, error) {
	for {
		if it.outerRow == nil || it.bpos >= len(it.bucket) {
			row, ok, err := it.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.outerRow = row.Clone()
			it.outerBindRow.row = it.outerRow
			h, hok := hashKey(it.outerExprs, it.outerBindRow)
			if !hok {
				it.outerRow = nil
				continue
			}
			it.bucket = it.table[h]
			it.bpos = 0
			it.ec.cpuOps++
			if len(it.bucket) == 0 {
				it.outerRow = nil
				continue
			}
		}
		irow := it.bucket[it.bpos]
		it.bpos++
		out := make(datum.Row, 0, len(it.schema))
		out = append(out, it.outerRow...)
		out = append(out, irow...)
		it.combined.row = out
		if !evalPreds(it.n.Residual.Slice(), it.combined) {
			continue
		}
		it.ec.cpuOps++
		return out, true, nil
	}
}

func (it *hashJoinIter) Close() error {
	it.table = nil
	return it.outer.Close()
}

// unionIter concatenates two streams with identical column layouts.
type unionIter struct {
	ec   *Ctx
	a, b Iterator
	onB  bool
}

func buildUnion(ec *Ctx, n *plan.Node) (Iterator, error) {
	a, err := ec.build(n.Inputs[0])
	if err != nil {
		return nil, err
	}
	b, err := ec.build(n.Inputs[1])
	if err != nil {
		return nil, err
	}
	if len(a.Schema()) != len(b.Schema()) {
		return nil, fmt.Errorf("exec: UNION arity mismatch")
	}
	return &unionIter{ec: ec, a: a, b: b}, nil
}

func (it *unionIter) Schema() []expr.ColID { return it.a.Schema() }

func (it *unionIter) Open(outer expr.Binding) error {
	it.onB = false
	if err := it.a.Open(outer); err != nil {
		return err
	}
	return it.b.Open(outer)
}

func (it *unionIter) Next() (datum.Row, bool, error) {
	if !it.onB {
		row, ok, err := it.a.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			it.ec.cpuOps++
			return row, true, nil
		}
		it.onB = true
	}
	row, ok, err := it.b.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.ec.cpuOps++
	return row, true, nil
}

func (it *unionIter) Close() error {
	err1 := it.a.Close()
	err2 := it.b.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
