package exec_test

import (
	"reflect"
	"strings"
	"testing"

	"stars/internal/catalog"
	"stars/internal/datum"
	"stars/internal/exec"
	"stars/internal/expr"
	"stars/internal/opt"
	"stars/internal/plan"
	"stars/internal/query"
	"stars/internal/storage"
	"stars/internal/workload"
)

// ixandCatalog: a wide table with two single-column indexes, each matching
// one moderately selective predicate; neither index alone is selective
// enough to beat the scan, but their intersection is.
func ixandCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.AddTable(&catalog.Table{
		Name: "T",
		Cols: []*catalog.Column{
			{Name: "ID", Type: datum.KindInt, NDV: 200000},
			{Name: "A", Type: datum.KindInt, NDV: 20},
			{Name: "B", Type: datum.KindInt, NDV: 20},
			{Name: "PAD", Type: datum.KindString, NDV: 200000, Width: 200},
		},
		Card: 200000,
		Paths: []*catalog.AccessPath{
			{Name: "T_A", Table: "T", Cols: []string{"A"}},
			{Name: "T_B", Table: "T", Cols: []string{"B"}},
		},
	})
	if err := cat.Validate(); err != nil {
		panic(err)
	}
	return cat
}

func ixandQuery() *query.Graph {
	return &query.Graph{
		Quants: []query.Quantifier{{Name: "T", Table: "T"}},
		Preds: expr.NewPredSet(
			&expr.Cmp{Op: expr.EQ, L: expr.C("T", "A"), R: &expr.Const{Val: datum.NewInt(3)}},
			&expr.Cmp{Op: expr.EQ, L: expr.C("T", "B"), R: &expr.Const{Val: datum.NewInt(7)}},
		),
		Select: []expr.ColID{{Table: "T", Col: "ID"}, {Table: "T", Col: "PAD"}},
	}
}

func TestIndexAndingWinsAndExecutes(t *testing.T) {
	cat := ixandCatalog()
	g := ixandQuery()
	res, err := opt.New(cat, opt.Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(res.Best)
	if !strings.Contains(out, "IXAND") {
		t.Fatalf("expected index-ANDing to win:\n%s", out)
	}
	// Both predicates are applied by the probes, none left to the GET.
	if !res.Best.Props.Preds().Contains(g.Preds.Slice()[0]) ||
		!res.Best.Props.Preds().Contains(g.Preds.Slice()[1]) {
		t.Fatalf("predicates dropped:\n%s", out)
	}

	// Execute on smaller data of the same shape and compare to the oracle.
	small := ixandCatalog()
	small.Table("T").Card = 20000
	cluster := storage.NewCluster()
	workload.Populate(cluster, small, 17)
	er, err := exec.NewRuntime(cluster, cat).Run(res.Best)
	if err != nil {
		t.Fatalf("execute:\n%s\nerror: %v", out, err)
	}
	want := workload.Oracle(cluster, cat, g)
	got := workload.RenderRows(er.Schema, er.Rows, g.SelectCols(cat))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("IXAND result mismatch: %d vs %d rows\n%s", len(got), len(want), out)
	}
	if len(want) == 0 {
		t.Fatal("oracle empty; the scenario is vacuous")
	}
}

// TestIndexAndingNotUsedWhenOneIndexSuffices: with one highly selective
// predicate, the single-index plan must win (no pointless second probe).
func TestIndexAndingNotUsedWhenOneIndexSuffices(t *testing.T) {
	cat := ixandCatalog()
	cat.Table("T").Column("A").NDV = 100000 // A alone is selective
	g := ixandQuery()
	res, err := opt.New(cat, opt.Options{}).Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(res.Best), "IXAND") {
		t.Fatalf("IXAND should lose to the single selective index:\n%s", plan.Explain(res.Best))
	}
}
