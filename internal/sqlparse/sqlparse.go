// Package sqlparse is a small SQL front end for the examples and CLI: it
// parses SELECT ... FROM ... [WHERE ...] [ORDER BY ...] into the optimizer's
// query graph. Joins are expressed as conjunctive WHERE predicates, as in
// the paper's era. The dialect is deliberately small — the reproduction's
// subject is the optimizer, not the parser — but it is a real
// recursive-descent parser with name resolution against the catalog.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"stars/internal/catalog"
	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/query"
)

// Parse parses one SELECT statement and resolves it against the catalog,
// returning the validated query graph.
func Parse(sql string, cat *catalog.Catalog) (*query.Graph, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat}
	g, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("sql: unexpected %q after statement", p.cur().text)
	}
	if err := g.Validate(cat); err != nil {
		return nil, err
	}
	return g, nil
}

type tkind uint8

const (
	tEOF tkind = iota
	tIdent
	tNumber
	tString
	tPunct // ( ) , . * = <> < <= > >= + - /
)

type tok struct {
	kind tkind
	text string
	num  float64
}

func lex(src string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, tok{kind: tIdent, text: src[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", src[i:j])
			}
			out = append(out, tok{kind: tNumber, text: src[i:j], num: n})
			i = j
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("sql: unterminated string literal")
			}
			out = append(out, tok{kind: tString, text: src[i+1 : j]})
			i = j + 1
		case strings.ContainsRune("(),.*=+-/", rune(c)):
			out = append(out, tok{kind: tPunct, text: string(c)})
			i++
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '=' || src[i+1] == '>') {
				out = append(out, tok{kind: tPunct, text: src[i : i+2]})
				i += 2
			} else {
				out = append(out, tok{kind: tPunct, text: "<"})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{kind: tPunct, text: ">="})
				i += 2
			} else {
				out = append(out, tok{kind: tPunct, text: ">"})
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{kind: tPunct, text: "<>"})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!'")
			}
		default:
			return nil, fmt.Errorf("sql: unexpected character %q", string(c))
		}
	}
	out = append(out, tok{kind: tEOF})
	return out, nil
}

type parser struct {
	toks []tok
	pos  int
	cat  *catalog.Catalog
	g    *query.Graph
}

func (p *parser) cur() tok { return p.toks[p.pos] }

func (p *parser) next() tok {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

// kw consumes a case-insensitive keyword.
func (p *parser) kw(word string) bool {
	if p.cur().kind == tIdent && strings.EqualFold(p.cur().text, word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) punct(s string) bool {
	if p.cur().kind == tPunct && p.cur().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident(what string) (string, error) {
	t := p.cur()
	if t.kind != tIdent {
		return "", fmt.Errorf("sql: expected %s, found %q", what, t.text)
	}
	p.next()
	return t.text, nil
}

// selectItem is a parsed projection entry, resolved after FROM is known.
type selectItem struct {
	table string // "" = unqualified
	col   string
	star  bool
}

func (p *parser) parseSelect() (*query.Graph, error) {
	if !p.kw("SELECT") {
		return nil, fmt.Errorf("sql: expected SELECT")
	}
	var items []selectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.punct(",") {
			break
		}
	}
	if !p.kw("FROM") {
		return nil, fmt.Errorf("sql: expected FROM")
	}
	p.g = &query.Graph{}
	for {
		table, err := p.ident("table name")
		if err != nil {
			return nil, err
		}
		alias := table
		if p.kw("AS") {
			alias, err = p.ident("alias")
			if err != nil {
				return nil, err
			}
		} else if p.cur().kind == tIdent && !isKeyword(p.cur().text) {
			alias = p.next().text
		}
		p.g.Quants = append(p.g.Quants, query.Quantifier{Name: alias, Table: table})
		if !p.punct(",") {
			break
		}
	}
	if p.kw("WHERE") {
		var preds []expr.Expr
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pred)
			if !p.kw("AND") {
				break
			}
		}
		p.g.Preds = expr.NewPredSet(preds...)
	} else {
		p.g.Preds = expr.NewPredSet()
	}
	if p.kw("ORDER") {
		if !p.kw("BY") {
			return nil, fmt.Errorf("sql: expected BY after ORDER")
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			p.g.OrderBy = append(p.g.OrderBy, c)
			if !p.punct(",") {
				break
			}
		}
	}
	// Resolve the projection now that quantifiers are known.
	for _, item := range items {
		switch {
		case item.star && item.table == "":
			// SELECT *: empty Select means every column.
			if len(items) > 1 {
				return nil, fmt.Errorf("sql: '*' cannot be combined with other select items")
			}
		case item.star:
			q := p.g.Quant(item.table)
			if q == nil {
				return nil, fmt.Errorf("sql: unknown quantifier %q", item.table)
			}
			t := p.cat.Table(q.Table)
			for _, c := range t.Cols {
				p.g.Select = append(p.g.Select, expr.ColID{Table: q.Name, Col: c.Name})
			}
		default:
			c, err := p.resolveCol(item.table, item.col)
			if err != nil {
				return nil, err
			}
			p.g.Select = append(p.g.Select, c)
		}
	}
	return p.g, nil
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "ORDER", "BY", "AND", "FROM", "SELECT", "AS":
		return true
	}
	return false
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.punct("*") {
		return selectItem{star: true}, nil
	}
	name, err := p.ident("column")
	if err != nil {
		return selectItem{}, err
	}
	if p.punct(".") {
		if p.punct("*") {
			return selectItem{table: name, star: true}, nil
		}
		col, err := p.ident("column")
		if err != nil {
			return selectItem{}, err
		}
		return selectItem{table: name, col: col}, nil
	}
	return selectItem{col: name}, nil
}

// parseColRef parses table.col or an unqualified col and resolves it.
func (p *parser) parseColRef() (expr.ColID, error) {
	name, err := p.ident("column")
	if err != nil {
		return expr.ColID{}, err
	}
	if p.punct(".") {
		col, err := p.ident("column")
		if err != nil {
			return expr.ColID{}, err
		}
		return p.resolveCol(name, col)
	}
	return p.resolveCol("", name)
}

// resolveCol resolves a possibly-unqualified column against the FROM list.
func (p *parser) resolveCol(table, col string) (expr.ColID, error) {
	if table != "" {
		q := p.g.Quant(table)
		if q == nil {
			return expr.ColID{}, fmt.Errorf("sql: unknown quantifier %q", table)
		}
		return expr.ColID{Table: table, Col: col}, nil
	}
	var found []expr.ColID
	for _, q := range p.g.Quants {
		t := p.cat.Table(q.Table)
		if t != nil && t.Column(col) != nil {
			found = append(found, expr.ColID{Table: q.Name, Col: col})
		}
	}
	switch len(found) {
	case 0:
		return expr.ColID{}, fmt.Errorf("sql: column %q not found in any FROM table", col)
	case 1:
		return found[0], nil
	default:
		return expr.ColID{}, fmt.Errorf("sql: column %q is ambiguous", col)
	}
}

func (p *parser) parsePred() (expr.Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op expr.CmpOp
	switch t.text {
	case "=":
		op = expr.EQ
	case "<>":
		op = expr.NE
	case "<":
		op = expr.LT
	case "<=":
		op = expr.LE
	case ">":
		op = expr.GT
	case ">=":
		op = expr.GE
	default:
		return nil, fmt.Errorf("sql: expected comparison operator, found %q", t.text)
	}
	p.next()
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &expr.Cmp{Op: op, L: l, R: r}, nil
}

// parseOperand parses an additive arithmetic expression over columns and
// literals.
func (p *parser) parseOperand() (expr.Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch p.cur().text {
		case "+":
			op = expr.Add
		case "-":
			op = expr.Sub
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &expr.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseTerm() (expr.Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.ArithOp
		switch p.cur().text {
		case "*":
			op = expr.Mul
		case "/":
			op = expr.Div
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &expr.Arith{Op: op, L: l, R: r}
	}
}

func (p *parser) parseFactor() (expr.Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.next()
		if t.num == float64(int64(t.num)) && !strings.Contains(t.text, ".") {
			return &expr.Const{Val: datum.NewInt(int64(t.num))}, nil
		}
		return &expr.Const{Val: datum.NewFloat(t.num)}, nil
	case t.kind == tString:
		p.next()
		return &expr.Const{Val: datum.NewString(t.text)}, nil
	case t.kind == tPunct && t.text == "(":
		p.next()
		e, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if !p.punct(")") {
			return nil, fmt.Errorf("sql: expected ')'")
		}
		return e, nil
	case t.kind == tIdent:
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return &expr.Col{ID: c}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %q in expression", t.text)
	}
}
