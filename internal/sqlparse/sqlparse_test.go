package sqlparse

import (
	"strings"
	"testing"

	"stars/internal/datum"
	"stars/internal/expr"
	"stars/internal/workload"
)

func TestParseFigure1Query(t *testing.T) {
	cat := workload.EmpDept()
	g, err := Parse("SELECT DEPT.DNO, DEPT.MGR, EMP.NAME FROM DEPT, EMP "+
		"WHERE DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas'", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Quants) != 2 || g.Quants[0].Name != "DEPT" || g.Quants[1].Table != "EMP" {
		t.Fatalf("quants = %+v", g.Quants)
	}
	if g.Preds.Len() != 2 {
		t.Fatalf("preds = %s", g.Preds)
	}
	if len(g.Select) != 3 {
		t.Fatalf("select = %v", g.Select)
	}
}

func TestParseAliases(t *testing.T) {
	cat := workload.EmpDept()
	// Self-join with AS and bare aliases.
	g, err := Parse("SELECT E1.NAME, E2.NAME FROM EMP AS E1, EMP E2 "+
		"WHERE E1.DNO = E2.DNO AND E1.ENO < E2.ENO", cat)
	if err != nil {
		t.Fatal(err)
	}
	if g.Quants[0].Name != "E1" || g.Quants[0].Table != "EMP" || g.Quants[1].Name != "E2" {
		t.Fatalf("quants = %+v", g.Quants)
	}
}

func TestUnqualifiedResolution(t *testing.T) {
	cat := workload.EmpDept()
	g, err := Parse("SELECT MGR FROM DEPT WHERE BUDGET > 100", cat)
	if err != nil {
		t.Fatal(err)
	}
	if g.Select[0] != (expr.ColID{Table: "DEPT", Col: "MGR"}) {
		t.Fatalf("select = %v", g.Select)
	}
	// NAME exists only in EMP; resolves across the FROM list.
	if _, err := Parse("SELECT NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO", cat); err != nil {
		t.Fatal(err)
	}
	// DNO exists in both: ambiguous.
	_, err = Parse("SELECT DNO FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO", cat)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
	// Unknown column.
	_, err = Parse("SELECT NOPE FROM DEPT", cat)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestStarSelect(t *testing.T) {
	cat := workload.EmpDept()
	g, err := Parse("SELECT * FROM DEPT", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Select) != 0 {
		t.Error("bare * leaves Select empty (= all columns)")
	}
	g, err = Parse("SELECT DEPT.* FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Select) != 3 {
		t.Fatalf("DEPT.* = %v", g.Select)
	}
	if _, err := Parse("SELECT *, MGR FROM DEPT", cat); err == nil {
		t.Error("* mixed with items must fail")
	}
}

func TestOrderBy(t *testing.T) {
	cat := workload.EmpDept()
	g, err := Parse("SELECT DNO, MGR FROM DEPT ORDER BY DNO, MGR", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.OrderBy) != 2 || g.OrderBy[0].Col != "DNO" {
		t.Fatalf("order by = %v", g.OrderBy)
	}
}

func TestOperatorsAndArithmetic(t *testing.T) {
	cat := workload.EmpDept()
	g, err := Parse("SELECT NAME FROM EMP WHERE SAL + 100 * 2 >= 500 AND ENO <> 3 AND DNO <= 50", cat)
	if err != nil {
		t.Fatal(err)
	}
	if g.Preds.Len() != 3 {
		t.Fatalf("preds = %s", g.Preds)
	}
	// Precedence: the GE predicate's left side is SAL + (100*2).
	for _, p := range g.Preds.Slice() {
		c, ok := p.(*expr.Cmp)
		if !ok {
			t.Fatal("non-comparison predicate")
		}
		if c.Op == expr.GE {
			a, ok := c.L.(*expr.Arith)
			if !ok || a.Op != expr.Add {
				t.Fatalf("precedence: %s", p)
			}
			if m, ok := a.R.(*expr.Arith); !ok || m.Op != expr.Mul {
				t.Fatalf("precedence: %s", p)
			}
		}
	}
	// Parentheses override.
	g2, err := Parse("SELECT NAME FROM EMP WHERE (SAL + 100) * 2 >= 500", cat)
	if err != nil {
		t.Fatal(err)
	}
	c := g2.Preds.Slice()[0].(*expr.Cmp)
	if m, ok := c.L.(*expr.Arith); !ok || m.Op != expr.Mul {
		t.Fatalf("parens: %s", c)
	}
}

func TestLiteralTypes(t *testing.T) {
	cat := workload.EmpDept()
	g, err := Parse("SELECT NAME FROM EMP WHERE SAL > 1.5 AND ENO = 3 AND NAME = 'bob'", cat)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[datum.Kind]bool{}
	for _, p := range g.Preds.Slice() {
		c := p.(*expr.Cmp)
		if k, ok := c.R.(*expr.Const); ok {
			kinds[k.Val.Kind()] = true
		}
	}
	if !kinds[datum.KindFloat] || !kinds[datum.KindInt] || !kinds[datum.KindString] {
		t.Errorf("literal kinds = %v", kinds)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	cat := workload.EmpDept()
	if _, err := Parse("select MGR from DEPT where BUDGET > 1 order by MGR", cat); err != nil {
		t.Fatal(err)
	}
}

func TestNotEqualsSpellings(t *testing.T) {
	cat := workload.EmpDept()
	for _, q := range []string{
		"SELECT MGR FROM DEPT WHERE DNO <> 3",
		"SELECT MGR FROM DEPT WHERE DNO != 3",
	} {
		g, err := Parse(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		if g.Preds.Slice()[0].(*expr.Cmp).Op != expr.NE {
			t.Errorf("%q did not parse as NE", q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cat := workload.EmpDept()
	cases := []struct{ sql, want string }{
		{"FROM DEPT", "expected SELECT"},
		{"SELECT MGR DEPT", "expected FROM"},
		{"SELECT MGR FROM", "table name"},
		{"SELECT MGR FROM NOPE", "not found"},
		{"SELECT MGR FROM DEPT WHERE", "expected"},
		{"SELECT MGR FROM DEPT WHERE MGR", "comparison operator"},
		{"SELECT MGR FROM DEPT WHERE MGR = 'x' extra", "unexpected"},
		{"SELECT MGR FROM DEPT ORDER DNO", "expected BY"},
		{"SELECT MGR FROM DEPT WHERE MGR = 'unclosed", "unterminated"},
		{"SELECT MGR FROM DEPT WHERE (MGR = 'x'", "')'"},
		{"SELECT MGR FROM DEPT WHERE MGR = !", "unexpected"},
		{"SELECT MGR FROM DEPT WHERE DEPT.NOPE = 1", "not in table"},
	}
	for _, c := range cases {
		if _, err := Parse(c.sql, cat); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want substring %q", c.sql, err, c.want)
		}
	}
}

func TestParsedGraphOptimizes(t *testing.T) {
	// End-to-end: everything Parse produces must survive Validate for the
	// optimizer.
	cat := workload.EmpDept()
	for _, q := range []string{
		"SELECT * FROM DEPT",
		"SELECT DEPT.DNO, EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO ORDER BY DEPT.DNO",
		"SELECT NAME FROM EMP WHERE SAL / 2 < 30000",
	} {
		g, err := Parse(q, cat)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if err := g.Validate(cat); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
}
