// Package obsguard statically enforces the repo's zero-alloc observability
// invariant: every event- or profile-emitting call on an obs sink —
// Emit, StartSpan, ProfActivity, ProfRank, ProfPhase — must be dominated
// by a cheap enabled-guard (Enabled, ProfEnabled, ProfLabels, KeepsEvents),
// because rendering the call's arguments (fingerprints, condition strings,
// composite events) costs allocations even when the sink is nil and would
// discard the result. See the Enabled doc in internal/obs.
//
// A call is considered guarded when, within its enclosing function:
//
//   - it sits in the body of an if-statement whose condition mentions a
//     guard call or a boolean assigned from one (`if sink.Enabled()`,
//     `profiled := sink.ProfEnabled(); ...; if profiled { ... }`), or
//   - an earlier statement in an enclosing block is an early exit on the
//     negated guard (`if !sink.Enabled() { return }`), or
//   - the enclosing function is a package-local helper and every one of
//     its call sites in the package is itself guarded (render helpers like
//     emitOpEvents that document "caller checks Enabled"), or
//   - the call line, the line above it, or the enclosing function's doc
//     comment carries an `//obsguard:ignore` directive with a stated
//     reason (cold paths that emit unconditionally by design, e.g.
//     once-per-request serving code where the sink is never nil).
//
// The core is stdlib-only so the invariant is tested in tier-1; the
// vettool/ subdirectory wraps it in a go/analysis pass (separate module,
// needs golang.org/x/tools) that CI runs via `go vet -vettool`.
package obsguard

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive is the comment marker that exempts a call site or a whole
// function from the check. State the reason after the marker.
const Directive = "obsguard:ignore"

// emitMethods are the sink methods whose arguments render observability
// payloads and therefore must be guarded.
var emitMethods = map[string]bool{
	"Emit":         true,
	"StartSpan":    true,
	"ProfActivity": true,
	"ProfRank":     true,
	"ProfPhase":    true,
}

// guardMethods are the cheap nil-safe predicates that establish domination.
var guardMethods = map[string]bool{
	"Enabled":     true,
	"ProfEnabled": true,
	"ProfLabels":  true,
	"KeepsEvents": true,
}

// Diagnostic is one violation: an emit call with no dominating guard.
type Diagnostic struct {
	Pos token.Pos
	Msg string
}

type callSite struct {
	from      string // key of the calling function
	dominated bool   // guard-dominated (or exempted) at the site
}

// fnInfo is the per-function record the helper fixpoint runs over.
type fnInfo struct {
	exempt  bool         // function-level directive
	pending []Diagnostic // emit calls with no local guard, awaiting caller resolution
	sites   []callSite   // package-local calls of this function
}

type checker struct {
	fset        *token.FileSet
	diags       []Diagnostic
	ignoreLines map[string]map[int]bool
	fns         map[string]*fnInfo
}

// Check analyzes one package's files (parsed with comments, sharing fset)
// and returns the violations in position order.
func Check(fset *token.FileSet, files []*ast.File) []Diagnostic {
	c := &checker{
		fset:        fset,
		ignoreLines: map[string]map[int]bool{},
		fns:         map[string]*fnInfo{},
	}
	// Pass 0: comment directives and the function universe, so call sites
	// recorded in pass 1 can land on not-yet-scanned callees.
	for _, f := range files {
		c.collectDirectives(f)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.fns[funcKey(fn)] = &fnInfo{exempt: commentHas(fn.Doc, Directive)}
			}
		}
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				c.scanFunc(fn)
			}
		}
	}
	c.resolveHelpers()
	sort.Slice(c.diags, func(i, j int) bool { return c.diags[i].Pos < c.diags[j].Pos })
	return c.diags
}

// commentHas scans raw comment lines: CommentGroup.Text() strips
// directive-style comments, which is exactly what the marker is.
func commentHas(g *ast.CommentGroup, marker string) bool {
	if g == nil {
		return false
	}
	for _, cm := range g.List {
		if strings.Contains(cm.Text, marker) {
			return true
		}
	}
	return false
}

func (c *checker) collectDirectives(f *ast.File) {
	for _, g := range f.Comments {
		for _, cm := range g.List {
			if !strings.Contains(cm.Text, Directive) {
				continue
			}
			p := c.fset.Position(cm.Pos())
			lines := c.ignoreLines[p.Filename]
			if lines == nil {
				lines = map[int]bool{}
				c.ignoreLines[p.Filename] = lines
			}
			lines[p.Line] = true
		}
	}
}

func (c *checker) ignoredAt(pos token.Pos) bool {
	p := c.fset.Position(pos)
	lines := c.ignoreLines[p.Filename]
	// A directive exempts its own line (trailing comment) or the next
	// (standalone comment above the call).
	return lines[p.Line] || lines[p.Line-1]
}

// funcKey names a function uniquely within the package: "Name" for plain
// functions, "(T).Name" for methods (pointerness and type parameters are
// stripped, so call-site resolution by name works without type info).
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	return "(" + recvTypeName(fn.Recv.List[0].Type) + ")." + fn.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return ""
}

func (c *checker) scanFunc(fn *ast.FuncDecl) {
	key := funcKey(fn)
	info := c.fns[key]
	guards := guardIdents(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if !emitMethods[fun.Sel.Name] {
				return true
			}
			if info.exempt || c.ignoredAt(call.Pos()) || dominated(fn.Body, call, guards) {
				return true
			}
			info.pending = append(info.pending, Diagnostic{
				Pos: call.Pos(),
				Msg: fun.Sel.Name + " call not dominated by an Enabled()/ProfEnabled() guard (zero-alloc invariant; guard it, hoist it behind the caller's guard, or annotate //obsguard:ignore with a reason)",
			})
		case *ast.Ident:
			// A package-local helper call: record whether this site is
			// guarded so the helper's own emit calls can inherit it.
			callee, known := c.fns[fun.Name]
			if !known {
				return true
			}
			callee.sites = append(callee.sites, callSite{
				from:      key,
				dominated: info.exempt || c.ignoredAt(call.Pos()) || dominated(fn.Body, call, guards),
			})
		}
		return true
	})
}

// resolveHelpers flushes pending diagnostics: a function keeps its findings
// unless every package-local call site is guarded (transitively through
// caller helpers). Functions nobody in the package calls — exported API,
// handlers — get no benefit of the doubt.
func (c *checker) resolveHelpers() {
	memo := map[string]bool{}
	var guardedFn func(key string, onPath map[string]bool) bool
	guardedFn = func(key string, onPath map[string]bool) bool {
		if v, ok := memo[key]; ok {
			return v
		}
		if onPath[key] {
			return false // recursion: no guarantee
		}
		onPath[key] = true
		defer delete(onPath, key)
		info := c.fns[key]
		ok := info != nil && len(info.sites) > 0
		if info != nil {
			for _, s := range info.sites {
				if !s.dominated && !guardedFn(s.from, onPath) {
					ok = false
					break
				}
			}
		}
		memo[key] = ok
		return ok
	}
	for key, info := range c.fns {
		if len(info.pending) == 0 || guardedFn(key, map[string]bool{}) {
			continue
		}
		c.diags = append(c.diags, info.pending...)
	}
}

// guardIdents collects names assigned (anywhere in the body) from an
// expression that includes a guard call: `profiled := s.ProfEnabled()`,
// `full := pt.Obs.Enabled() || pt.PruneDisabled`.
func guardIdents(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			hit := false
			for _, rhs := range st.Rhs {
				if exprHasGuard(rhs, nil) {
					hit = true
				}
			}
			if hit {
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			hit := false
			for _, rhs := range st.Values {
				if exprHasGuard(rhs, nil) {
					hit = true
				}
			}
			if hit {
				for _, id := range st.Names {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// exprHasGuard reports whether the expression mentions a guard-method call
// or a known guard boolean.
func exprHasGuard(e ast.Expr, guards map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && guardMethods[sel.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if guards[x.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// dominated reports whether target (inside body) is controlled by a guard:
// an enclosing if-body whose condition mentions a guard, or an earlier
// early-exit statement `if !guard { return/continue/break/panic }` in an
// enclosing block.
func dominated(body *ast.BlockStmt, target ast.Node, guards map[string]bool) bool {
	path := pathTo(body, target)
	for i, n := range path {
		var next ast.Node
		if i+1 < len(path) {
			next = path[i+1]
		}
		switch s := n.(type) {
		case *ast.IfStmt:
			if next == s.Body && exprHasGuard(s.Cond, guards) {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				if st == next {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && negatedGuard(ifs.Cond, guards) && alwaysExits(ifs.Body) {
					return true
				}
			}
		case *ast.CaseClause:
			for _, st := range s.Body {
				if st == next {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && negatedGuard(ifs.Cond, guards) && alwaysExits(ifs.Body) {
					return true
				}
			}
		}
	}
	return false
}

func negatedGuard(cond ast.Expr, guards map[string]bool) bool {
	u, ok := cond.(*ast.UnaryExpr)
	return ok && u.Op == token.NOT && exprHasGuard(u.X, guards)
}

// alwaysExits reports whether a block certainly diverts control flow:
// its last statement is a return, branch, or panic.
func alwaysExits(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// pathTo returns the node chain from root down to target (inclusive), or
// nil when target is not under root.
func pathTo(root, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if found != nil {
			return false
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}
