// Command obsguard-vet wraps the stdlib-only obsguard core in a go/analysis
// pass so it can run as `go vet -vettool=$(which obsguard-vet) ./...`.
//
// This directory is a separate Go module: the main repo is dependency-free
// by policy, and golang.org/x/tools is needed only here. CI builds it with
//
//	cd tools/analyzers/obsguard/vettool && go mod tidy && go build -o obsguard-vet .
//
// The analysis logic itself lives in the parent package and is exercised by
// tier-1 tests without any of this plumbing.
package main

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"stars/tools/analyzers/obsguard"
)

var analyzer = &analysis.Analyzer{
	Name: "obsguard",
	Doc:  "check that obs emit calls are dominated by sink.Enabled()-style guards (zero-alloc invariant)",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, d := range obsguard.Check(pass.Fset, pass.Files) {
			pass.Report(analysis.Diagnostic{Pos: d.Pos, Message: d.Msg})
		}
		return nil, nil
	},
}

func main() { unitchecker.Main(analyzer) }
