module stars/tools/analyzers/obsguard/vettool

go 1.22

require (
	golang.org/x/tools v0.24.0
	stars v0.0.0
)

replace stars => ../../../..
