package obsguard

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// check parses source snippets as one package and runs the analyzer.
func check(t *testing.T, srcs ...string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, "src"+string(rune('a'+i))+".go", src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	return Check(fset, files)
}

const header = "package p\n\nfunc work() {}\n"

func TestDirectGuardShapes(t *testing.T) {
	clean := header + `
func a(s *Sink) {
	if s.Enabled() {
		s.Emit(ev())
	}
}
func b(s *Sink) {
	profiled := s.ProfEnabled()
	if profiled {
		s.ProfActivity(1, 2, 3)
	}
}
func c(s *Sink) {
	if !s.Enabled() {
		return
	}
	s.Emit(ev())
}
func d(s *Sink, disabled bool) {
	full := s.Enabled() || disabled
	if full {
		s.StartSpan("x", "", "", 0)
	}
}
func e(s *Sink) {
	if s.Enabled() {
		sp := s.StartSpan("x", "", "", 0)
		_ = sp
		s.Emit(ev())
	}
}
`
	if diags := check(t, clean); len(diags) != 0 {
		t.Errorf("clean shapes flagged: %+v", diags)
	}
}

func TestUnguardedEmitFlagged(t *testing.T) {
	bad := header + `
func a(s *Sink) {
	s.Emit(ev())
}
func b(s *Sink, cond bool) {
	if cond {
		s.ProfRank(nil)
	}
}
func c(s *Sink) {
	if !s.Enabled() {
		work() // does not exit: everything after is still unguarded
	}
	s.Emit(ev())
}
`
	diags := check(t, bad)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Msg, "not dominated") {
			t.Errorf("unexpected message %q", d.Msg)
		}
	}
}

func TestHelperInheritsCallerGuards(t *testing.T) {
	// emitAll is unguarded internally, but its only call sites are guarded.
	clean := header + `
func emitAll(s *Sink) {
	s.Emit(ev())
	s.Emit(ev())
}
func a(s *Sink) {
	if s.Enabled() {
		emitAll(s)
	}
}
func b(s *Sink) {
	if !s.Enabled() {
		return
	}
	emitAll(s)
}
`
	if diags := check(t, clean); len(diags) != 0 {
		t.Errorf("guarded helper flagged: %+v", diags)
	}
	// One unguarded call site breaks the inheritance.
	bad := clean + `
func leak(s *Sink) {
	emitAll(s)
}
`
	if diags := check(t, bad); len(diags) != 2 {
		t.Errorf("helper with an unguarded caller: got %d diagnostics, want 2 (both emits): %+v", len(diags), diags)
	}
	// A helper nobody calls gets no benefit of the doubt.
	orphan := header + `
func emitAll(s *Sink) {
	s.Emit(ev())
}
`
	if diags := check(t, orphan); len(diags) != 1 {
		t.Errorf("orphan helper: got %d diagnostics, want 1: %+v", len(diags), diags)
	}
}

func TestRecursiveHelpersNotTrusted(t *testing.T) {
	src := header + `
func ping(s *Sink) {
	s.Emit(ev())
	pong(s)
}
func pong(s *Sink) {
	ping(s)
}
`
	if diags := check(t, src); len(diags) != 1 {
		t.Errorf("mutual recursion must not launder guards: %+v", diags)
	}
}

func TestIgnoreDirectives(t *testing.T) {
	src := header + `
// handler emits once per request; the sink is never nil here.
//obsguard:ignore cold path, sink injected per request
func handler(s *Sink) {
	s.Emit(ev())
	s.ProfPhase("parse", 0, 0)
}
func inline(s *Sink) {
	s.Emit(ev()) //obsguard:ignore boot-time, runs once
	//obsguard:ignore next line
	s.Emit(ev())
	s.Emit(ev())
}
`
	diags := check(t, src)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only the undirected emit): %+v", len(diags), diags)
	}
}

func TestGuardAcrossFilesDoesNotLeak(t *testing.T) {
	// A guard ident in one function must not excuse another function.
	src := header + `
func a(s *Sink) {
	profiled := s.ProfEnabled()
	_ = profiled
}
func b(s *Sink, profiled bool) {
	if profiled {
		s.Emit(ev()) // bool param, not assigned from a guard here
	}
}
`
	if diags := check(t, src); len(diags) != 1 {
		t.Errorf("foreign guard ident leaked: %+v", diags)
	}
}

// TestRepoSelfGate runs the analyzer over every non-test package of the
// main module: the repository must satisfy its own invariant. This is the
// tier-1 stand-in for the CI `go vet -vettool` leg (which needs x/tools).
func TestRepoSelfGate(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := map[string][]string{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vettool" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("walked only %d packages from %s; wrong root?", len(pkgs), root)
	}
	for dir, paths := range pkgs {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, p := range paths {
			f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			files = append(files, f)
		}
		for _, d := range Check(fset, files) {
			t.Errorf("%s: %s: %s", dir, fset.Position(d.Pos), d.Msg)
		}
	}
}
