module stars

go 1.22
