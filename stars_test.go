package stars_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stars"
)

func TestFacadeEndToEnd(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	g, err := stars.ParseSQL(
		"SELECT DEPT.DNO, EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas'", cat)
	if err != nil {
		t.Fatal(err)
	}
	cluster := stars.NewCluster()
	stars.PopulateEmpDept(cluster, cat, 1)
	res, er, err := stars.Run(cat, cluster, g, stars.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if er.Stats.RowsOut == 0 {
		t.Fatal("no rows")
	}
	out := stars.Explain(res.Best)
	if !strings.Contains(out, "JOIN") {
		t.Fatalf("explain:\n%s", out)
	}
	if !strings.Contains(stars.Functional(res.Best), "JOIN(") {
		t.Error("functional notation")
	}
	if !strings.Contains(stars.ExplainVerbose(res.Best), "TABLES") {
		t.Error("verbose explain")
	}
	rows := stars.Project(er, g.SelectCols(cat))
	if len(rows) != int(er.Stats.RowsOut) || len(rows[0]) != 2 {
		t.Fatalf("Project shape: %d rows × %d cols", len(rows), len(rows[0]))
	}
}

func TestFacadeRules(t *testing.T) {
	rs := stars.DefaultRules()
	text := stars.FormatRules(rs)
	rs2, err := stars.ParseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Names()) != len(rs.Names()) {
		t.Error("round trip")
	}
}

func TestFacadeCatalogFile(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	path := filepath.Join(t.TempDir(), "cat.json")
	if err := cat.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := stars.LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Table("EMP") == nil || loaded.Table("EMP").Card != 10000 {
		t.Fatal("catalog round trip")
	}
	if _, err := stars.LoadCatalog(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := stars.LoadCatalog(bad); err == nil {
		t.Fatal("bad json")
	}
}

func TestFacadeTrace(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	g, err := stars.ParseSQL("SELECT MGR FROM DEPT", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stars.Optimize(cat, g, stars.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stars.FormatTrace(res), "AccessRoot") {
		t.Error("trace must show the access STAR")
	}
}

// TestDefaultRuleTextIsTheRepertoire pins the paper's STAR names into the
// shipped rule file so refactors cannot silently drop a strategy.
func TestDefaultRuleTextIsTheRepertoire(t *testing.T) {
	for _, want := range []string{
		"JoinRoot", "PermutedJoin", "RemoteJoin", "SitedJoin", "JMeth",
		"AccessRoot", "TableAccess", "IndexAccess",
		"'NL'", "'MG'", "'HA'",
		"sortablePreds", "hashablePreds", "indexablePreds", "innerPreds",
		"projectionPays", "indexCols",
		"IXAND", "tidcol", "OrderedStream", "pathPrefix",
	} {
		if !strings.Contains(stars.DefaultRuleText, want) {
			t.Errorf("rule file lost %q", want)
		}
	}
}

// TestConcurrentOptimizeIsolation runs many optimizations in parallel —
// some observed through per-request sinks, some through the process-wide
// default fallback — and asserts (a) every result is correct, (b) every
// event in a request sink carries that request's id and nothing else
// (traces never interleave), and (c) both per-request and fallback metrics
// registries accumulated work. Run under -race this also proves the
// optimizer's shared inputs (catalog, rule set) tolerate concurrent reads.
func TestConcurrentOptimizeIsolation(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	queries := []string{
		"SELECT DEPT.DNO, EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas'",
		"SELECT EMP.NAME, EMP.SAL FROM EMP WHERE EMP.DNO = 42",
		"SELECT DEPT.MGR, DEPT.BUDGET FROM DEPT WHERE DEPT.DNO = 7",
		"SELECT EMP.NAME, DEPT.BUDGET FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO",
		"SELECT EMP.ENO, EMP.ADDRESS FROM EMP WHERE EMP.SAL = 1000",
	}

	shared := stars.NewMetricsSink()
	stars.SetDefaultSink(shared)
	defer stars.SetDefaultSink(nil)

	const n = 24
	var wg sync.WaitGroup
	sinks := make([]*stars.Sink, n)
	results := make([]*stars.Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := stars.ParseSQL(queries[i%len(queries)], cat)
			if err != nil {
				errs[i] = err
				return
			}
			if i%3 == 0 {
				// Options.Obs nil: exercises the atomic default-sink path.
				results[i], errs[i] = stars.Optimize(cat, g, stars.Options{})
				return
			}
			sink := stars.NewRequestSink(fmt.Sprintf("q%d", i))
			sinks[i] = sink
			results[i], errs[i] = stars.Optimize(cat, g, stars.Options{Obs: sink})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] == nil || results[i].Best == nil {
			t.Fatalf("goroutine %d: no plan", i)
		}
	}
	for i, sink := range sinks {
		if sink == nil {
			continue
		}
		id := fmt.Sprintf("q%d", i)
		evs := sink.Events()
		if len(evs) == 0 {
			t.Fatalf("%s: sink recorded no events", id)
		}
		for _, e := range evs {
			if e.Req != id {
				t.Fatalf("%s: trace mixing — event %q tagged %q", id, e.Name, e.Req)
			}
		}
		if sink.Registry().Counter("star_rule_refs_total").Value() == 0 {
			t.Errorf("%s: per-request registry empty", id)
		}
	}
	if shared.Registry().Counter("star_rule_refs_total").Value() == 0 {
		t.Error("default fallback sink accumulated no metrics")
	}
}

func TestFacadeIncidentReplay(t *testing.T) {
	dir := t.TempDir()
	srv, err := stars.NewServer(stars.ServerConfig{
		Flight: stars.FlightConfig{
			MinSamples:      1,
			LatencyFactor:   1e9, // isolate the Q-error trigger
			QErrorThreshold: 1,
			IncidentDir:     dir,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := `{"sql":"SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 42","execute":true,"analyze":true}`
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/optimize", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("optimize: status %d: %s", rec.Code, rec.Body.String())
	}
	paths, err := filepath.Glob(filepath.Join(dir, "inc-*.json"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("incident bundles on disk: %v (err %v)", paths, err)
	}
	inc, err := stars.ReadIncident(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if inc.Kind != "qerror" || inc.Capture.SQL == "" {
		t.Fatalf("incident %s kind %q, capture sql %q", inc.ID, inc.Kind, inc.Capture.SQL)
	}
	rr, err := stars.ReplayIncident(inc)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Identical {
		t.Fatalf("facade replay diverged: captured %s replayed %s", rr.CapturedFP, rr.Fingerprint)
	}
}
