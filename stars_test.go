package stars_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stars"
)

func TestFacadeEndToEnd(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	g, err := stars.ParseSQL(
		"SELECT DEPT.DNO, EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas'", cat)
	if err != nil {
		t.Fatal(err)
	}
	cluster := stars.NewCluster()
	stars.PopulateEmpDept(cluster, cat, 1)
	res, er, err := stars.Run(cat, cluster, g, stars.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if er.Stats.RowsOut == 0 {
		t.Fatal("no rows")
	}
	out := stars.Explain(res.Best)
	if !strings.Contains(out, "JOIN") {
		t.Fatalf("explain:\n%s", out)
	}
	if !strings.Contains(stars.Functional(res.Best), "JOIN(") {
		t.Error("functional notation")
	}
	if !strings.Contains(stars.ExplainVerbose(res.Best), "TABLES") {
		t.Error("verbose explain")
	}
	rows := stars.Project(er, g.SelectCols(cat))
	if len(rows) != int(er.Stats.RowsOut) || len(rows[0]) != 2 {
		t.Fatalf("Project shape: %d rows × %d cols", len(rows), len(rows[0]))
	}
}

func TestFacadeRules(t *testing.T) {
	rs := stars.DefaultRules()
	text := stars.FormatRules(rs)
	rs2, err := stars.ParseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Names()) != len(rs.Names()) {
		t.Error("round trip")
	}
}

func TestFacadeCatalogFile(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	path := filepath.Join(t.TempDir(), "cat.json")
	if err := cat.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := stars.LoadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Table("EMP") == nil || loaded.Table("EMP").Card != 10000 {
		t.Fatal("catalog round trip")
	}
	if _, err := stars.LoadCatalog(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := stars.LoadCatalog(bad); err == nil {
		t.Fatal("bad json")
	}
}

func TestFacadeTrace(t *testing.T) {
	cat := stars.EmpDeptCatalog()
	g, err := stars.ParseSQL("SELECT MGR FROM DEPT", cat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stars.Optimize(cat, g, stars.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stars.FormatTrace(res), "AccessRoot") {
		t.Error("trace must show the access STAR")
	}
}

// TestDefaultRuleTextIsTheRepertoire pins the paper's STAR names into the
// shipped rule file so refactors cannot silently drop a strategy.
func TestDefaultRuleTextIsTheRepertoire(t *testing.T) {
	for _, want := range []string{
		"JoinRoot", "PermutedJoin", "RemoteJoin", "SitedJoin", "JMeth",
		"AccessRoot", "TableAccess", "IndexAccess",
		"'NL'", "'MG'", "'HA'",
		"sortablePreds", "hashablePreds", "indexablePreds", "innerPreds",
		"projectionPays", "indexCols",
		"IXAND", "tidcol", "OrderedStream", "pathPrefix",
	} {
		if !strings.Contains(stars.DefaultRuleText, want) {
			t.Errorf("rule file lost %q", want)
		}
	}
}
